#ifndef ZOMBIE_FEATUREENG_EXTRACTORS_H_
#define ZOMBIE_FEATUREENG_EXTRACTORS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "featureeng/feature_extractor.h"
#include "text/hashing_vectorizer.h"

namespace zombie {

/// Hashed bag of words over the document's token ids. `sublinear_tf`
/// replaces raw counts with log(1 + count).
class HashedBagOfWordsExtractor : public FeatureExtractor {
 public:
  HashedBagOfWordsExtractor(uint32_t dimension, bool sublinear_tf = true,
                            uint64_t salt = 0);

  void Extract(const Document& doc, const Corpus& corpus,
               TermCounts* out) const override;
  uint32_t dimension() const override { return vectorizer_.dimension(); }
  std::string name() const override;
  double cost_factor() const override { return 1.0; }
  uint64_t Fingerprint() const override;  // folds in salt + sublinear flag

 private:
  HashingVectorizer vectorizer_;
  bool sublinear_tf_;
};

/// Hashed bag of token-id bigrams (adjacent pairs). Heavier than unigrams.
class HashedBigramExtractor : public FeatureExtractor {
 public:
  explicit HashedBigramExtractor(uint32_t dimension, uint64_t salt = 1);

  void Extract(const Document& doc, const Corpus& corpus,
               TermCounts* out) const override;
  uint32_t dimension() const override { return dimension_; }
  std::string name() const override;
  double cost_factor() const override { return 1.5; }
  uint64_t Fingerprint() const override;  // folds in the hash salt

 private:
  uint32_t dimension_;
  uint64_t salt_;
};

/// Indicator features for a fixed list of vocabulary token ids (the
/// "engineer hand-picked these keywords" feature).
class KeywordExtractor : public FeatureExtractor {
 public:
  explicit KeywordExtractor(std::vector<uint32_t> keyword_token_ids);

  void Extract(const Document& doc, const Corpus& corpus,
               TermCounts* out) const override;
  uint32_t dimension() const override {
    return static_cast<uint32_t>(keywords_.size());
  }
  std::string name() const override;
  double cost_factor() const override { return 0.2; }
  uint64_t Fingerprint() const override;  // folds in the keyword ids

 private:
  std::vector<uint32_t> keywords_;  // sorted
};

/// Bucketized log document length (one-hot over `num_buckets`).
class DocLengthExtractor : public FeatureExtractor {
 public:
  explicit DocLengthExtractor(uint32_t num_buckets = 16);

  void Extract(const Document& doc, const Corpus& corpus,
               TermCounts* out) const override;
  uint32_t dimension() const override { return num_buckets_; }
  std::string name() const override { return "doclen"; }
  double cost_factor() const override { return 0.05; }

 private:
  uint32_t num_buckets_;
};

/// One-hot hashed domain id (hostname analogue).
class DomainExtractor : public FeatureExtractor {
 public:
  explicit DomainExtractor(uint32_t dimension = 256);

  void Extract(const Document& doc, const Corpus& corpus,
               TermCounts* out) const override;
  uint32_t dimension() const override { return dimension_; }
  std::string name() const override { return "domain"; }
  double cost_factor() const override { return 0.05; }

 private:
  uint32_t dimension_;
};

/// Lexical-diversity signal: distinct/total token ratio, bucketized.
class TokenDiversityExtractor : public FeatureExtractor {
 public:
  explicit TokenDiversityExtractor(uint32_t num_buckets = 10);

  void Extract(const Document& doc, const Corpus& corpus,
               TermCounts* out) const override;
  uint32_t dimension() const override { return num_buckets_; }
  std::string name() const override { return "diversity"; }
  double cost_factor() const override { return 0.3; }

 private:
  uint32_t num_buckets_;
};

/// Wraps another extractor and inflates its cost_factor — stands in for
/// heavyweight feature code (an NLP parse, an image model) whose output we
/// model with the inner extractor's features.
class ExpensiveWrapperExtractor : public FeatureExtractor {
 public:
  ExpensiveWrapperExtractor(std::unique_ptr<FeatureExtractor> inner,
                            double cost_multiplier);

  void Extract(const Document& doc, const Corpus& corpus,
               TermCounts* out) const override;
  uint32_t dimension() const override { return inner_->dimension(); }
  std::string name() const override;
  double cost_factor() const override {
    return inner_->cost_factor() * cost_multiplier_;
  }
  uint64_t Fingerprint() const override;  // delegates to the inner extractor

 private:
  std::unique_ptr<FeatureExtractor> inner_;
  double cost_multiplier_;
};

}  // namespace zombie

#endif  // ZOMBIE_FEATUREENG_EXTRACTORS_H_
