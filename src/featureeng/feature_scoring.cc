#include "featureeng/feature_scoring.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace zombie {

namespace {

struct ClassDf {
  std::vector<uint32_t> df_pos;
  std::vector<uint32_t> df_neg;
  uint32_t num_pos = 0;
  uint32_t num_neg = 0;
};

// One pass over the sample: per-term document frequency split by label.
ClassDf CountClassDf(const Corpus& corpus,
                     const std::vector<uint32_t>& sample) {
  ClassDf out;
  out.df_pos.assign(corpus.vocabulary().size(), 0);
  out.df_neg.assign(corpus.vocabulary().size(), 0);
  std::vector<uint32_t> distinct;
  for (uint32_t idx : sample) {
    ZCHECK_LT(idx, corpus.size());
    const Document& doc = corpus.doc(idx);
    bool positive = doc.label == 1;
    (positive ? out.num_pos : out.num_neg) += 1;
    distinct.assign(doc.tokens.begin(), doc.tokens.end());
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    auto& df = positive ? out.df_pos : out.df_neg;
    for (uint32_t tok : distinct) {
      if (tok < df.size()) ++df[tok];
    }
  }
  return out;
}

std::vector<TermScore> TopK(std::vector<TermScore> scores, size_t top_k) {
  std::sort(scores.begin(), scores.end(),
            [](const TermScore& a, const TermScore& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.token_id < b.token_id;
            });
  if (scores.size() > top_k) scores.resize(top_k);
  return scores;
}

}  // namespace

std::vector<TermScore> ChiSquareTerms(const Corpus& corpus,
                                      const std::vector<uint32_t>& sample,
                                      size_t top_k) {
  ClassDf df = CountClassDf(corpus, sample);
  double n = static_cast<double>(df.num_pos + df.num_neg);
  std::vector<TermScore> scores;
  if (n == 0.0) return scores;
  for (uint32_t tok = 0; tok < df.df_pos.size(); ++tok) {
    // 2x2 table: a = pos&present, b = neg&present, c = pos&absent,
    // d = neg&absent.
    double a = df.df_pos[tok];
    double b = df.df_neg[tok];
    if (a + b == 0.0) continue;  // never appears in the sample
    double c = static_cast<double>(df.num_pos) - a;
    double d = static_cast<double>(df.num_neg) - b;
    double denom = (a + b) * (c + d) * (a + c) * (b + d);
    if (denom == 0.0) continue;
    double num = a * d - b * c;
    TermScore s;
    s.token_id = tok;
    s.score = n * num * num / denom;
    s.df_positive = df.df_pos[tok];
    s.df_negative = df.df_neg[tok];
    scores.push_back(s);
  }
  return TopK(std::move(scores), top_k);
}

std::vector<TermScore> PmiTerms(const Corpus& corpus,
                                const std::vector<uint32_t>& sample,
                                size_t top_k) {
  ClassDf df = CountClassDf(corpus, sample);
  double n = static_cast<double>(df.num_pos + df.num_neg);
  std::vector<TermScore> scores;
  if (n == 0.0 || df.num_pos == 0) return scores;
  double p_pos = static_cast<double>(df.num_pos) / n;
  for (uint32_t tok = 0; tok < df.df_pos.size(); ++tok) {
    double present = df.df_pos[tok] + df.df_neg[tok];
    if (present == 0.0) continue;
    // PMI(term, positive) with add-one smoothing.
    double p_term = (present + 1.0) / (n + 2.0);
    double p_joint = (static_cast<double>(df.df_pos[tok]) + 1.0) / (n + 2.0);
    TermScore s;
    s.token_id = tok;
    s.score = std::log(p_joint / (p_term * p_pos));
    s.df_positive = df.df_pos[tok];
    s.df_negative = df.df_neg[tok];
    scores.push_back(s);
  }
  return TopK(std::move(scores), top_k);
}

std::vector<uint32_t> SuggestKeywords(const Corpus& corpus,
                                      const std::vector<uint32_t>& sample,
                                      size_t top_k) {
  std::vector<uint32_t> out;
  for (const TermScore& s : ChiSquareTerms(corpus, sample, top_k)) {
    out.push_back(s.token_id);
  }
  return out;
}

}  // namespace zombie
