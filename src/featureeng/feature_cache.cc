#include "featureeng/feature_cache.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/random.h"

namespace zombie {

size_t FeatureCache::KeyHash::operator()(const Key& k) const {
  return static_cast<size_t>(HashCombine(k.fingerprint, k.doc_id));
}

FeatureCache::FeatureCache(FeatureCacheOptions options)
    : options_(options) {
  ZCHECK_GE(options_.capacity, 1u);
}

std::shared_ptr<const FeatureCache::Entry> FeatureCache::Lookup(
    uint64_t pipeline_fingerprint, uint32_t doc_id) {
  uint64_t now = tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  {
    ReaderMutexLock lock(&mu_);
    auto it = map_.find(Key{pipeline_fingerprint, doc_id});
    if (it != map_.end()) {
      it->second->last_used.store(now, std::memory_order_relaxed);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second->entry;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

std::shared_ptr<const FeatureCache::Entry> FeatureCache::LookupForExtraction(
    uint64_t pipeline_fingerprint, uint32_t doc_id,
    bool* speculative_first_touch) {
  *speculative_first_touch = false;
  uint64_t now = tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  {
    ReaderMutexLock lock(&mu_);
    auto it = map_.find(Key{pipeline_fingerprint, doc_id});
    if (it != map_.end()) {
      it->second->last_used.store(now, std::memory_order_relaxed);
      // Promote a speculative entry on first touch. exchange() makes the
      // promotion race-free: exactly one caller observes true.
      if (it->second->speculative.exchange(false,
                                           std::memory_order_acq_rel)) {
        *speculative_first_touch = true;
        // As-if-no-prefetch accounting: without prefetch this lookup would
        // have missed, so count it as one.
        misses_.fetch_add(1, std::memory_order_relaxed);
      } else {
        hits_.fetch_add(1, std::memory_order_relaxed);
      }
      return it->second->entry;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void FeatureCache::Insert(uint64_t pipeline_fingerprint, uint32_t doc_id,
                          Entry entry) {
  uint64_t now = tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  auto slot = std::make_unique<Slot>(
      std::make_shared<const Entry>(std::move(entry)), now);
  WriterMutexLock lock(&mu_);
  auto [it, inserted] =
      map_.try_emplace(Key{pipeline_fingerprint, doc_id}, nullptr);
  if (!inserted) {
    // First writer wins; just refresh recency.
    it->second->last_used.store(now, std::memory_order_relaxed);
    return;
  }
  it->second = std::move(slot);
  inserts_.fetch_add(1, std::memory_order_relaxed);
  if (map_.size() > options_.capacity) EvictLocked();
}

bool FeatureCache::InsertSpeculative(uint64_t pipeline_fingerprint,
                                     uint32_t doc_id, Entry entry) {
  uint64_t now = tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  auto slot = std::make_unique<Slot>(
      std::make_shared<const Entry>(std::move(entry)), now,
      /*spec=*/true);
  WriterMutexLock lock(&mu_);
  // Speculation never evicts: a full cache simply rejects the insert, so
  // background prefetch cannot push out entries a real Insert committed —
  // evicting them would change future hit/miss outcomes and break the
  // prefetch-on/off byte-identity contract.
  if (map_.size() >= options_.capacity &&
      map_.find(Key{pipeline_fingerprint, doc_id}) == map_.end()) {
    return false;
  }
  auto [it, inserted] =
      map_.try_emplace(Key{pipeline_fingerprint, doc_id}, nullptr);
  if (!inserted) {
    // Keep the existing entry untouched: in particular never downgrade an
    // engine-inserted (non-speculative) entry back to speculative, which
    // would turn a real future hit into a logged miss. Recency is
    // deliberately not refreshed — speculation must not extend lifetimes
    // of entries it didn't create.
    return false;
  }
  it->second = std::move(slot);
  inserts_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FeatureCache::Contains(uint64_t pipeline_fingerprint,
                            uint32_t doc_id) const {
  ReaderMutexLock lock(&mu_);
  return map_.find(Key{pipeline_fingerprint, doc_id}) != map_.end();
}

void FeatureCache::EvictLocked() {
  // Batch eviction: drop the stalest entries down to 7/8 of capacity, so
  // the O(n) recency scan amortizes over ~capacity/8 subsequent inserts.
  size_t target = options_.capacity - options_.capacity / 8;
  target = std::max<size_t>(target, 1);
  if (map_.size() <= target) return;
  std::vector<std::pair<uint64_t, Key>> recency;
  recency.reserve(map_.size());
  // Iteration order is hash-seed-dependent, but only the *set* of stalest
  // entries matters here and nth_element orders by recency tick; eviction
  // affects wall-clock hit rates, never virtual-time results (an
  // overcommitted cache already voids DecisionLog replay — see the
  // ExtractionService equivalence contract).
  for (const auto& [key, slot] : map_) {  // zombie-lint: allow(no-unordered-iteration)
    recency.emplace_back(slot->last_used.load(std::memory_order_relaxed),
                         key);
  }
  size_t to_evict = map_.size() - target;
  std::nth_element(
      recency.begin(),
      recency.begin() + static_cast<std::ptrdiff_t>(to_evict - 1),
      recency.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  for (size_t i = 0; i < to_evict; ++i) {
    map_.erase(recency[i].second);
  }
  evictions_.fetch_add(to_evict, std::memory_order_relaxed);
}

void FeatureCache::Clear() {
  WriterMutexLock lock(&mu_);
  evictions_.fetch_add(map_.size(), std::memory_order_relaxed);
  map_.clear();
}

FeatureCacheStats FeatureCache::Stats() const {
  FeatureCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  ReaderMutexLock lock(&mu_);
  s.entries = map_.size();
  return s;
}

void FeatureCache::ExportMetrics(MetricsRegistry* metrics) const {
  if (metrics == nullptr) return;
  FeatureCacheStats s = Stats();
  metrics->GetGauge("featureeng.cache.entries")
      ->Set(static_cast<double>(s.entries));
  metrics->GetGauge("featureeng.cache.inserts")
      ->Set(static_cast<double>(s.inserts));
  metrics->GetGauge("featureeng.cache.evictions")
      ->Set(static_cast<double>(s.evictions));
  metrics->GetGauge("featureeng.cache.hits_total")
      ->Set(static_cast<double>(s.hits));
  metrics->GetGauge("featureeng.cache.misses_total")
      ->Set(static_cast<double>(s.misses));
  metrics->GetGauge("featureeng.cache.hit_rate")->Set(s.hit_rate());
}

}  // namespace zombie
