#include "featureeng/revision_script.h"

#include <memory>

#include "featureeng/extractors.h"
#include "text/vocabulary.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace zombie {

void RevisionScript::Add(
    std::string name, std::function<FeaturePipeline(const Corpus&)> build) {
  revisions_.push_back(Revision{std::move(name), std::move(build)});
}

const std::string& RevisionScript::name(size_t i) const {
  ZCHECK_LT(i, revisions_.size());
  return revisions_[i].name;
}

FeaturePipeline RevisionScript::BuildPipeline(size_t i,
                                              const Corpus& corpus) const {
  ZCHECK_LT(i, revisions_.size());
  return revisions_[i].build(corpus);
}

// Term names are setup-time input (resolved once per revision build), so
// the owning container is fine here.
std::vector<uint32_t> ResolveTerms(
    const Corpus& corpus,
    const std::vector<std::string>& terms) {  // zombie-lint: allow(no-hot-path-string-copy)
  std::vector<uint32_t> ids;
  for (const auto& t : terms) {
    uint32_t id = corpus.vocabulary().Lookup(t);
    if (id != Vocabulary::kUnknownTerm) ids.push_back(id);
  }
  return ids;
}

namespace {

// The engineer's keyword guesses: frequent target-topic terms (topic 0's
// Zipf head), the signals a human would notice first in the positives.
std::vector<uint32_t> TargetTopicKeywords(const Corpus& corpus, size_t count) {
  // Setup-time only: runs once per revision build, not per event.
  std::vector<std::string> names;  // zombie-lint: allow(no-hot-path-string-copy)
  names.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    names.push_back(StrFormat("topic0_w%zu", i));
  }
  return ResolveTerms(corpus, names);
}

}  // namespace

RevisionScript MakeWebCatRevisionScript() {
  RevisionScript script;
  script.Add("r0-bow256", [](const Corpus&) {
    FeaturePipeline p("r0-bow256");
    p.Add(std::make_unique<HashedBagOfWordsExtractor>(256));
    return p;
  });
  script.Add("r1-bow1024", [](const Corpus&) {
    FeaturePipeline p("r1-bow1024");
    p.Add(std::make_unique<HashedBagOfWordsExtractor>(1024));
    return p;
  });
  script.Add("r2-bow4096", [](const Corpus&) {
    FeaturePipeline p("r2-bow4096");
    p.Add(std::make_unique<HashedBagOfWordsExtractor>(4096));
    return p;
  });
  script.Add("r3-add-doclen", [](const Corpus&) {
    FeaturePipeline p("r3-add-doclen");
    p.Add(std::make_unique<HashedBagOfWordsExtractor>(4096));
    p.Add(std::make_unique<DocLengthExtractor>());
    return p;
  });
  script.Add("r4-add-domain", [](const Corpus&) {
    FeaturePipeline p("r4-add-domain");
    p.Add(std::make_unique<HashedBagOfWordsExtractor>(4096));
    p.Add(std::make_unique<DocLengthExtractor>());
    p.Add(std::make_unique<DomainExtractor>());
    return p;
  });
  script.Add("r5-bow8192", [](const Corpus&) {
    FeaturePipeline p("r5-bow8192");
    p.Add(std::make_unique<HashedBagOfWordsExtractor>(8192));
    p.Add(std::make_unique<DomainExtractor>());
    return p;
  });
  script.Add("r6-add-keywords", [](const Corpus& corpus) {
    FeaturePipeline p("r6-add-keywords");
    p.Add(std::make_unique<HashedBagOfWordsExtractor>(8192));
    p.Add(std::make_unique<DomainExtractor>());
    p.Add(std::make_unique<KeywordExtractor>(TargetTopicKeywords(corpus, 12)));
    return p;
  });
  script.Add("r7-add-diversity", [](const Corpus& corpus) {
    FeaturePipeline p("r7-add-diversity");
    p.Add(std::make_unique<HashedBagOfWordsExtractor>(8192));
    p.Add(std::make_unique<DomainExtractor>());
    p.Add(std::make_unique<KeywordExtractor>(TargetTopicKeywords(corpus, 12)));
    p.Add(std::make_unique<TokenDiversityExtractor>());
    return p;
  });
  script.Add("r8-add-bigrams", [](const Corpus& corpus) {
    FeaturePipeline p("r8-add-bigrams");
    p.Add(std::make_unique<HashedBagOfWordsExtractor>(8192));
    p.Add(std::make_unique<DomainExtractor>());
    p.Add(std::make_unique<KeywordExtractor>(TargetTopicKeywords(corpus, 12)));
    p.Add(std::make_unique<HashedBigramExtractor>(4096));
    return p;
  });
  script.Add("r9-deep-features", [](const Corpus& corpus) {
    FeaturePipeline p("r9-deep-features");
    p.Add(std::make_unique<ExpensiveWrapperExtractor>(
        std::make_unique<HashedBagOfWordsExtractor>(8192), 2.0));
    p.Add(std::make_unique<DomainExtractor>());
    p.Add(std::make_unique<KeywordExtractor>(TargetTopicKeywords(corpus, 24)));
    p.Add(std::make_unique<HashedBigramExtractor>(4096));
    return p;
  });
  return script;
}

RevisionScript MakeEntityRevisionScript() {
  RevisionScript script;
  script.Add("e0-bow1024", [](const Corpus&) {
    FeaturePipeline p("e0-bow1024");
    p.Add(std::make_unique<HashedBagOfWordsExtractor>(1024));
    return p;
  });
  script.Add("e1-bow4096", [](const Corpus&) {
    FeaturePipeline p("e1-bow4096");
    p.Add(std::make_unique<HashedBagOfWordsExtractor>(4096));
    return p;
  });
  script.Add("e2-mention-keywords", [](const Corpus& corpus) {
    FeaturePipeline p("e2-mention-keywords");
    p.Add(std::make_unique<HashedBagOfWordsExtractor>(4096));
    p.Add(std::make_unique<KeywordExtractor>(TargetTopicKeywords(corpus, 8)));
    return p;
  });
  script.Add("e3-add-context", [](const Corpus& corpus) {
    FeaturePipeline p("e3-add-context");
    p.Add(std::make_unique<HashedBagOfWordsExtractor>(4096));
    p.Add(std::make_unique<KeywordExtractor>(TargetTopicKeywords(corpus, 8)));
    p.Add(std::make_unique<HashedBigramExtractor>(2048));
    return p;
  });
  script.Add("e4-add-domain", [](const Corpus& corpus) {
    FeaturePipeline p("e4-add-domain");
    p.Add(std::make_unique<HashedBagOfWordsExtractor>(4096));
    p.Add(std::make_unique<KeywordExtractor>(TargetTopicKeywords(corpus, 8)));
    p.Add(std::make_unique<HashedBigramExtractor>(2048));
    p.Add(std::make_unique<DomainExtractor>());
    return p;
  });
  script.Add("e5-deep-context", [](const Corpus& corpus) {
    FeaturePipeline p("e5-deep-context");
    p.Add(std::make_unique<ExpensiveWrapperExtractor>(
        std::make_unique<HashedBagOfWordsExtractor>(8192), 1.5));
    p.Add(std::make_unique<KeywordExtractor>(TargetTopicKeywords(corpus, 16)));
    p.Add(std::make_unique<HashedBigramExtractor>(4096));
    p.Add(std::make_unique<DomainExtractor>());
    return p;
  });
  return script;
}

}  // namespace zombie
