#ifndef ZOMBIE_FEATUREENG_REVISION_SCRIPT_H_
#define ZOMBIE_FEATUREENG_REVISION_SCRIPT_H_

#include <functional>
#include <string>
#include <vector>

#include "data/corpus.h"
#include "featureeng/pipeline.h"

namespace zombie {

/// One step of a scripted feature-engineering session: a named pipeline
/// builder. Builders take the corpus so they can resolve vocabulary terms
/// (an engineer's hand-picked keywords) into token ids.
struct Revision {
  std::string name;
  std::function<FeaturePipeline(const Corpus&)> build;
};

/// A fixed sequence of pipeline revisions standing in for the human
/// engineer of the paper's "engineer wait time" experiment: each revision
/// is one edit-run-evaluate iteration of the inner loop.
class RevisionScript {
 public:
  RevisionScript() = default;

  void Add(std::string name,
           std::function<FeaturePipeline(const Corpus&)> build);

  size_t size() const { return revisions_.size(); }
  const std::string& name(size_t i) const;

  /// Materializes revision i's pipeline against the given corpus.
  FeaturePipeline BuildPipeline(size_t i, const Corpus& corpus) const;

 private:
  std::vector<Revision> revisions_;
};

/// Ten-revision WebCat session: starts with a badly collided hashed BoW,
/// progressively widens it and adds metadata, keyword, and n-gram features
/// (including an expensive final revision). Quality broadly improves along
/// the script; cost grows toward the end — the realistic trajectory the
/// paper's 8h→5h experiment aggregates over.
RevisionScript MakeWebCatRevisionScript();

/// Six-revision EntityExtract session focused on keyword/mention features.
RevisionScript MakeEntityRevisionScript();

/// Looks up vocabulary terms by name; silently drops unknown terms.
std::vector<uint32_t> ResolveTerms(
    const Corpus& corpus,
    const std::vector<std::string>& terms);  // zombie-lint: allow(no-hot-path-string-copy)

}  // namespace zombie

#endif  // ZOMBIE_FEATUREENG_REVISION_SCRIPT_H_
