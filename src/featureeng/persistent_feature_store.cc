#include "featureeng/persistent_feature_store.h"

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/random.h"

namespace zombie {

namespace {

// --- On-disk layout constants (header is 64 bytes; see the class
// comment for the full format). ------------------------------------------
constexpr uint64_t kHeaderSize = 64;
constexpr uint32_t kSchemaVersion = 1;
constexpr uint64_t kMaxBuckets = 1ull << 26;
// Header field offsets.
constexpr uint64_t kMagicOffset = 0;        // u64
constexpr uint64_t kVersionOffset = 8;      // u32 (+4 reserved)
constexpr uint64_t kNumBucketsOffset = 16;  // u64
constexpr uint64_t kArenaUsedOffset = 24;   // u64
constexpr uint64_t kGenerationOffset = 32;  // u64
// Record payload layout (relative to payload start = record + 8).
constexpr uint64_t kPayloadNext = 0;         // u64: older record in chain
constexpr uint64_t kPayloadFingerprint = 8;  // u64
constexpr uint64_t kPayloadDocId = 16;       // u32
constexpr uint64_t kPayloadLabel = 20;       // i32
constexpr uint64_t kPayloadCost = 24;        // i64
constexpr uint64_t kPayloadNnz = 32;         // u32 (+4 pad)
constexpr uint64_t kPayloadIndices = 40;     // u32[nnz], then pad to 8
constexpr uint64_t kPayloadFixedSize = 40;
// Minimum file growth per Grow (amortizes remaps for small records).
constexpr uint64_t kGrowChunk = 1ull << 20;

uint64_t Magic() {
  uint64_t m = 0;
  std::memcpy(&m, "ZFSTORE1", sizeof(m));
  return m;
}

// Payload bytes for nnz nonzeros: fixed fields, u32 indices padded so the
// f64 values start 8-aligned (record offsets are always 8-aligned).
uint64_t PayloadLen(uint64_t nnz) {
  uint64_t idx_bytes = nnz * 4;
  if (nnz % 2 != 0) idx_bytes += 4;
  return kPayloadFixedSize + idx_bytes + nnz * 8;
}

uint64_t RecordSize(uint64_t payload_len) { return 8 + payload_len; }

// Unaligned-safe little-endian loads/stores. Every supported target is
// little-endian, so memcpy of the native representation is the format.
uint32_t LoadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
uint64_t LoadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
int32_t LoadI32(const uint8_t* p) {
  int32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
int64_t LoadI64(const uint8_t* p) {
  int64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
void StoreU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, sizeof(v)); }
void StoreU64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, sizeof(v)); }
void StoreI32(uint8_t* p, int32_t v) { std::memcpy(p, &v, sizeof(v)); }
void StoreI64(uint8_t* p, int64_t v) { std::memcpy(p, &v, sizeof(v)); }
double LoadF64(const uint8_t* p) {
  double v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

// Bucket heads are the commit points shared with concurrently running
// processes, so they get real atomic accesses (8-aligned by layout):
// release on publish, acquire on read, pairing the flip with the record
// bytes written before it.
uint64_t AtomicLoadU64(const uint8_t* p) {
  return __atomic_load_n(reinterpret_cast<const uint64_t*>(p),
                         __ATOMIC_ACQUIRE);
}
void AtomicStoreU64(uint8_t* p, uint64_t v) {
  __atomic_store_n(reinterpret_cast<uint64_t*>(p), v, __ATOMIC_RELEASE);
}

// CRC-32 (reflected polynomial 0xEDB88320, the zlib/gzip flavor), table
// driven; fast enough for record-sized payloads on the append/open path.
uint32_t Crc32(const uint8_t* data, uint64_t len) {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (uint64_t i = 0; i < len; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

bool Retained(const std::vector<uint64_t>& retain, uint64_t fingerprint) {
  if (retain.empty()) return true;
  return std::find(retain.begin(), retain.end(), fingerprint) != retain.end();
}

}  // namespace

PersistentFeatureStore::PersistentFeatureStore(
    std::string path, PersistentFeatureStoreOptions options)
    : path_(std::move(path)), options_(std::move(options)) {}

PersistentFeatureStore::~PersistentFeatureStore() = default;

StatusOr<std::unique_ptr<PersistentFeatureStore>> PersistentFeatureStore::Open(
    const std::string& path, PersistentFeatureStoreOptions options) {
  if (path.empty()) {
    return Status::InvalidArgument("store path must not be empty");
  }
  if (options.num_buckets == 0 || options.num_buckets > kMaxBuckets) {
    return Status::InvalidArgument("store num_buckets out of range");
  }
  auto store = std::unique_ptr<PersistentFeatureStore>(
      new PersistentFeatureStore(path, std::move(options)));
  ZOMBIE_RETURN_IF_ERROR(store->Init());
  return store;
}

Status PersistentFeatureStore::Init() {
  // Role election. A would-be writer that loses the exclusive lock
  // degrades to reader; a reader additionally tries the shared lock, but
  // proceeds lock-free when a live writer holds the exclusive one (reads
  // are safe without it — see the class comment).
  if (!options_.read_only) {
    StatusOr<FileLock> lock =
        FileLock::Acquire(path_ + ".lock", FileLockMode::kExclusive);
    if (lock.ok()) {
      write_lock_ = std::move(lock).value();
      writable_ = true;
    }
  }
  if (!writable_) {
    StatusOr<FileLock> lock =
        FileLock::Acquire(path_ + ".lock", FileLockMode::kShared);
    if (lock.ok()) write_lock_ = std::move(lock).value();
  }

  WriterMutexLock lock(&mu_);
  if (writable_) {
    uint64_t min_size = kHeaderSize + options_.num_buckets * 8;
    StatusOr<MmapFile> file = MmapFile::OpenOrCreate(path_, min_size);
    if (!file.ok()) return file.status();
    file_ = std::move(file).value();
  } else {
    StatusOr<MmapFile> file = MmapFile::OpenReadOnly(path_);
    if (!file.ok()) {
      // A reader racing the writer's first open (or pointed at a path
      // nobody has written yet) runs as an empty store rather than
      // failing the whole run.
      detached_ = true;
      return Status::OK();
    }
    file_ = std::move(file).value();
  }

  // Header validation. An all-zero magic is a freshly created (or
  // zero-truncated) file; anything else that fails validation is header
  // corruption and counts corrupt_skipped once.
  bool valid = false;
  bool fresh = false;
  if (file_.size() >= kHeaderSize) {
    uint64_t magic = LoadU64(file_.data() + kMagicOffset);
    if (magic == Magic() &&
        LoadU32(file_.data() + kVersionOffset) == kSchemaVersion) {
      uint64_t nb = LoadU64(file_.data() + kNumBucketsOffset);
      if (nb >= 1 && nb <= kMaxBuckets &&
          kHeaderSize + nb * 8 <= file_.size()) {
        num_buckets_ = nb;
        arena_offset_ = kHeaderSize + nb * 8;
        generation_ = LoadU64(file_.data() + kGenerationOffset);
        valid = true;
      }
    } else if (magic == 0) {
      fresh = true;
    }
  }

  if (!valid) {
    if (!fresh) corrupt_skipped_.fetch_add(1, std::memory_order_relaxed);
    if (!writable_) {
      // A reader cannot repair the file; run empty.
      detached_ = true;
      file_.Close();
      return Status::OK();
    }
    ZOMBIE_RETURN_IF_ERROR(ColdStartLocked());
    return Status::OK();
  }

  if (writable_) {
    generation_ += 1;
    AtomicStoreU64(file_.data() + kGenerationOffset, generation_);
  }
  RecoverLocked();
  if (writable_) {
    AtomicStoreU64(file_.data() + kArenaUsedOffset, arena_used_);
  }
  return Status::OK();
}

Status PersistentFeatureStore::ColdStartLocked() {
  num_buckets_ = options_.num_buckets;
  arena_offset_ = kHeaderSize + num_buckets_ * 8;
  // Never shrink: concurrent readers may have the old (larger) file
  // mapped, and shrinking under them would turn bounds-checked reads into
  // faults. Stale bytes past the fresh index are unreachable garbage.
  if (file_.size() < arena_offset_) {
    ZOMBIE_RETURN_IF_ERROR(file_.Grow(arena_offset_));
  }
  std::memset(file_.data(), 0, static_cast<size_t>(arena_offset_));
  StoreU64(file_.data() + kMagicOffset, Magic());
  StoreU32(file_.data() + kVersionOffset, kSchemaVersion);
  StoreU64(file_.data() + kNumBucketsOffset, num_buckets_);
  generation_ = 1;
  StoreU64(file_.data() + kGenerationOffset, generation_);
  arena_used_ = arena_offset_;
  StoreU64(file_.data() + kArenaUsedOffset, arena_used_);
  return Status::OK();
}

bool PersistentFeatureStore::ValidateRecordLocked(uint64_t offset,
                                                  uint64_t* next,
                                                  uint64_t* record_end) const {
  if (offset < arena_offset_ || offset % 8 != 0) return false;
  if (offset + 8 > file_.size()) return false;
  const uint8_t* rec = file_.data() + offset;
  uint64_t payload_len = LoadU32(rec + 4);
  if (payload_len < kPayloadFixedSize || payload_len % 8 != 0) return false;
  if (offset + RecordSize(payload_len) > file_.size()) return false;
  const uint8_t* payload = rec + 8;
  uint64_t nnz = LoadU32(payload + kPayloadNnz);
  if (PayloadLen(nnz) != payload_len) return false;
  // The CRC covers the payload *minus* the leading next link: the link is
  // a single aligned u64 the writer atomically repoints when unlinking
  // invalidated records, and re-CRCing on every unlink would make that
  // mutation non-atomic. Torn bodies are still caught; a torn link cannot
  // happen (single aligned store).
  if (LoadU32(rec) != Crc32(payload + 8, payload_len - 8)) return false;
  *next = LoadU64(payload + kPayloadNext);
  *record_end = offset + RecordSize(payload_len);
  return true;
}

void PersistentFeatureStore::RecoverLocked() {
  const bool invalidate = writable_ && !options_.retain_fingerprints.empty();
  uint64_t max_end = arena_offset_;
  for (uint64_t b = 0; b < num_buckets_; ++b) {
    // `link` is the location holding the offset of the record under
    // inspection: the bucket slot first, then each record's next field.
    uint64_t link = kHeaderSize + b * 8;
    uint64_t off = AtomicLoadU64(file_.data() + link);
    while (off != 0) {
      uint64_t next = 0;
      uint64_t end = 0;
      if (!ValidateRecordLocked(off, &next, &end)) {
        // Torn or corrupt: everything behind it is unreachable (its next
        // pointer cannot be trusted), so the chain is truncated here.
        corrupt_skipped_.fetch_add(1, std::memory_order_relaxed);
        if (writable_) AtomicStoreU64(file_.data() + link, 0);
        break;
      }
      uint64_t fp = LoadU64(file_.data() + off + 8 + kPayloadFingerprint);
      if (invalidate && !Retained(options_.retain_fingerprints, fp)) {
        invalidated_.fetch_add(1, std::memory_order_relaxed);
        AtomicStoreU64(file_.data() + link, next);  // unlink, keep walking
        off = next;
        continue;
      }
      recovered_.fetch_add(1, std::memory_order_relaxed);
      entries_.fetch_add(1, std::memory_order_relaxed);
      max_end = std::max(max_end, end);
      link = off + 8 + kPayloadNext;
      off = next;
    }
  }
  uint64_t header_used = LoadU64(file_.data() + kArenaUsedOffset);
  if (header_used < arena_offset_ || header_used > file_.size()) {
    header_used = arena_offset_;
  }
  arena_used_ = std::max(header_used, max_end);
}

uint64_t PersistentFeatureStore::FindLocked(uint64_t pipeline_fingerprint,
                                            uint32_t doc_id) const {
  uint64_t bucket =
      HashCombine(pipeline_fingerprint, doc_id) % num_buckets_;
  uint64_t off = AtomicLoadU64(file_.data() + kHeaderSize + bucket * 8);
  while (off != 0) {
    uint64_t next = 0;
    uint64_t end = 0;
    // Full validation per step: a reader's chain can reach records a live
    // writer published after this process opened (fine — they are
    // complete) or, past the mapped range, records it cannot see yet
    // (treated as chain end, not corruption).
    if (!ValidateRecordLocked(off, &next, &end)) return 0;
    const uint8_t* payload = file_.data() + off + 8;
    if (LoadU64(payload + kPayloadFingerprint) == pipeline_fingerprint &&
        LoadU32(payload + kPayloadDocId) == doc_id) {
      return off;
    }
    off = next;
  }
  return 0;
}

std::optional<FeatureCache::Entry> PersistentFeatureStore::Lookup(
    uint64_t pipeline_fingerprint, uint32_t doc_id) {
  ReaderMutexLock lock(&mu_);
  if (detached_) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  uint64_t off = FindLocked(pipeline_fingerprint, doc_id);
  if (off == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  const uint8_t* payload = file_.data() + off + 8;
  uint64_t nnz = LoadU32(payload + kPayloadNnz);
  uint64_t idx_bytes = nnz * 4;
  if (nnz % 2 != 0) idx_bytes += 4;
  const uint8_t* indices = payload + kPayloadIndices;
  const uint8_t* values = indices + idx_bytes;
  FeatureCache::Entry entry;
  for (uint64_t i = 0; i < nnz; ++i) {
    entry.features.PushBack(LoadU32(indices + i * 4), LoadF64(values + i * 8));
  }
  entry.label = LoadI32(payload + kPayloadLabel);
  entry.cost_micros = LoadI64(payload + kPayloadCost);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return entry;
}

bool PersistentFeatureStore::Append(uint64_t pipeline_fingerprint,
                                    uint32_t doc_id,
                                    const FeatureCache::Entry& entry) {
  if (!writable_) return false;
  WriterMutexLock lock(&mu_);
  if (detached_) return false;
  // First writer wins: records are immutable and values for a key are
  // identical by the determinism contract, so a duplicate is dropped.
  if (FindLocked(pipeline_fingerprint, doc_id) != 0) return false;

  uint64_t nnz = entry.features.num_nonzero();
  uint64_t payload_len = PayloadLen(nnz);
  uint64_t total = RecordSize(payload_len);
  if (arena_used_ + total > file_.size()) {
    uint64_t want = std::max(arena_used_ + total,
                             std::max(file_.size() * 2, file_.size() +
                                                            kGrowChunk));
    Status grown = file_.Grow(want);
    if (!grown.ok()) {
      ZLOG(Warning) << "feature store append failed to grow " << path_
                    << ": " << grown.ToString();
      detached_ = true;  // mapping may be gone; stop using it
      return false;
    }
  }

  uint64_t bucket = HashCombine(pipeline_fingerprint, doc_id) % num_buckets_;
  uint8_t* slot = file_.data() + kHeaderSize + bucket * 8;
  uint64_t old_head = AtomicLoadU64(slot);
  uint64_t off = arena_used_;
  uint8_t* rec = file_.data() + off;
  uint8_t* payload = rec + 8;
  std::memset(payload, 0, static_cast<size_t>(payload_len));
  StoreU64(payload + kPayloadNext, old_head);
  StoreU64(payload + kPayloadFingerprint, pipeline_fingerprint);
  StoreU32(payload + kPayloadDocId, doc_id);
  StoreI32(payload + kPayloadLabel, entry.label);
  StoreI64(payload + kPayloadCost, entry.cost_micros);
  StoreU32(payload + kPayloadNnz, static_cast<uint32_t>(nnz));
  uint64_t idx_bytes = nnz * 4;
  if (nnz % 2 != 0) idx_bytes += 4;
  uint8_t* indices = payload + kPayloadIndices;
  uint8_t* values = indices + idx_bytes;
  for (uint64_t i = 0; i < nnz; ++i) {
    StoreU32(indices + i * 4, entry.features.indices()[i]);
    double v = entry.features.values()[i];
    std::memcpy(values + i * 8, &v, sizeof(v));
  }
  StoreU32(rec + 4, static_cast<uint32_t>(payload_len));
  StoreU32(rec, Crc32(payload + 8, payload_len - 8));
  // Commit point: the record is fully written, now publish it. A crash
  // before this store leaves the bytes unreachable (reclaimed by the next
  // writer's recovery); a crash after it leaves a committed record.
  AtomicStoreU64(slot, off);
  arena_used_ += total;
  AtomicStoreU64(file_.data() + kArenaUsedOffset, arena_used_);
  appends_.fetch_add(1, std::memory_order_relaxed);
  entries_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

PersistentFeatureStoreStats PersistentFeatureStore::Stats() const {
  PersistentFeatureStoreStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.appends = appends_.load(std::memory_order_relaxed);
  s.recovered = recovered_.load(std::memory_order_relaxed);
  s.invalidated = invalidated_.load(std::memory_order_relaxed);
  s.corrupt_skipped = corrupt_skipped_.load(std::memory_order_relaxed);
  s.entries = entries_.load(std::memory_order_relaxed);
  s.writable = writable_;
  return s;
}

void PersistentFeatureStore::ExportMetrics(MetricsRegistry* metrics) const {
  if (metrics == nullptr) return;
  PersistentFeatureStoreStats s = Stats();
  metrics->GetGauge("store.hits")->Set(static_cast<double>(s.hits));
  metrics->GetGauge("store.misses")->Set(static_cast<double>(s.misses));
  metrics->GetGauge("store.appends")->Set(static_cast<double>(s.appends));
  metrics->GetGauge("store.recovered")->Set(static_cast<double>(s.recovered));
  metrics->GetGauge("store.invalidated")
      ->Set(static_cast<double>(s.invalidated));
  metrics->GetGauge("store.corrupt_skipped")
      ->Set(static_cast<double>(s.corrupt_skipped));
  metrics->GetGauge("store.entries")->Set(static_cast<double>(s.entries));
  metrics->GetGauge("store.hit_rate")->Set(s.hit_rate());
}

}  // namespace zombie
