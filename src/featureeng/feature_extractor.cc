#include "featureeng/feature_extractor.h"

#include <cstring>

#include "util/random.h"

namespace zombie {

uint64_t FeatureExtractor::Fingerprint() const {
  std::string n = name();
  uint64_t fp = HashBytes(n.data(), n.size());
  fp = HashCombine(fp, dimension());
  double cf = cost_factor();
  uint64_t cf_bits = 0;
  static_assert(sizeof(cf_bits) == sizeof(cf));
  std::memcpy(&cf_bits, &cf, sizeof(cf));
  return HashCombine(fp, cf_bits);
}

}  // namespace zombie
