// FeatureExtractor is a pure interface; this file anchors the translation
// unit for the featureeng library.
#include "featureeng/feature_extractor.h"
