#ifndef ZOMBIE_FEATUREENG_PERSISTENT_FEATURE_STORE_H_
#define ZOMBIE_FEATUREENG_PERSISTENT_FEATURE_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "featureeng/feature_cache.h"
#include "util/file_lock.h"
#include "util/mmap_file.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace zombie {

class MetricsRegistry;

struct PersistentFeatureStoreOptions {
  /// Hash buckets allocated when the file is created (or re-initialized
  /// after header corruption). Ignored when opening an existing store —
  /// the on-disk header wins.
  uint64_t num_buckets = 1u << 14;
  /// Force reader role even if the writer lock is free.
  bool read_only = false;
  /// Versioned invalidation: when non-empty, records whose pipeline
  /// fingerprint is not in this set are unlinked at open (writer role
  /// only; readers never mutate the file) and counted in
  /// Stats().invalidated. Empty retains everything.
  std::vector<uint64_t> retain_fingerprints;
};

/// Cumulative counters since Open (recovered/invalidated/corrupt_skipped
/// are set by the open-time scan and never move afterwards).
struct PersistentFeatureStoreStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t appends = 0;
  /// Committed records recovered by the open-time chain walk.
  uint64_t recovered = 0;
  /// Records dropped because their fingerprint was not retained.
  uint64_t invalidated = 0;
  /// Torn/corrupt records skipped at open (CRC or bounds failure), plus 1
  /// when the header itself was invalid and the store cold-started.
  uint64_t corrupt_skipped = 0;
  /// Records visible to this process (recovered + appends).
  uint64_t entries = 0;
  bool writable = false;

  double hit_rate() const {
    uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

/// On-disk, mmap-backed feature store: the persistent second tier behind
/// the in-memory FeatureCache, keyed by the same (pipeline fingerprint,
/// doc id) scheme, shared across processes and surviving restarts.
///
/// File format (all integers little-endian on every supported target;
/// see DESIGN.md "Persistent feature store"):
///
///   [header 64B]  magic "ZFSTORE1", schema version, bucket count, arena
///                 watermark, writer-open generation counter
///   [bucket index] num_buckets x u64 — absolute offset of the newest
///                 record in the bucket's chain (0 = empty)
///   [arena]       append-only 8-byte-aligned records:
///                 crc32(body) | payload_len | payload{next, body{fingerprint,
///                 doc_id, label, cost_micros, nnz, indices[], values[]}}
///                 (the CRC excludes the `next` link: unlinking an
///                 invalidated record atomically repoints the previous
///                 record's link, which must not invalidate its CRC)
///
/// Commit protocol: a record is written fully into free arena space, then
/// published by flipping the bucket head (a single aligned 8-byte release
/// store) to point at it — that flip IS the commit point. A writer killed
/// mid-append leaves either an unreachable partial record (overwritten by
/// the next writer) or a fully committed one; the open-time scan walks
/// every chain, CRC- and bounds-checks each record, truncates a chain at
/// the first invalid record (counted corrupt_skipped), and recomputes the
/// arena watermark from the committed records it found. A corrupt header
/// cold-starts the store (writer re-initializes in place, never shrinking
/// the file; a reader just runs empty) instead of aborting.
///
/// Roles: at Open the store tries the advisory writer lock
/// (`<path>.lock`, util/file_lock.h). Exactly one process holds it and
/// appends; everyone else degrades to read-only (shared lock, or lock-free
/// when a writer is active — reads are safe without the lock because
/// published records are immutable and readers validate bounds + CRC
/// against their own mapping). A reader's view is the file at its open
/// plus any records the writer publishes inside that mapped range.
///
/// Accounting contract (the same as-if discipline as FeatureCache and
/// prefetch): the store only ever short-circuits *wall-clock* extraction
/// work. ExtractionService reports a store hit as a cache *miss* — what
/// the caller would have seen with no store — and the engine charges the
/// virtual clock the full extraction cost it computes from the pipeline,
/// so RunResult and DecisionLog JSONL are byte-identical with the store
/// disabled, cold, or warm.
///
/// In-process concurrency: internally synchronized. Lookups take a shared
/// lock, appends an exclusive one (Grow may remap the file, so the
/// exclusive lock also fences readers off a moving mapping).
class PersistentFeatureStore {
 public:
  /// Opens (creating if absent, in writer role) the store at `path`.
  /// Errors only on unrecoverable environment problems (unmappable path,
  /// IO failure) — data-level corruption is recovered, never an error.
  static StatusOr<std::unique_ptr<PersistentFeatureStore>> Open(
      const std::string& path, PersistentFeatureStoreOptions options = {});

  ~PersistentFeatureStore();

  PersistentFeatureStore(const PersistentFeatureStore&) = delete;
  PersistentFeatureStore& operator=(const PersistentFeatureStore&) = delete;

  /// Returns the stored entry (features, label, recorded virtual cost),
  /// or nullopt. Counts a hit or miss.
  std::optional<FeatureCache::Entry> Lookup(uint64_t pipeline_fingerprint,
                                            uint32_t doc_id)
      ZOMBIE_EXCLUDES(mu_);

  /// Appends and publishes one record. Returns false without writing when
  /// the store is read-only or the key is already present (records are
  /// immutable; first writer wins, same as FeatureCache::Insert).
  bool Append(uint64_t pipeline_fingerprint, uint32_t doc_id,
              const FeatureCache::Entry& entry) ZOMBIE_EXCLUDES(mu_);

  /// True in writer role (holds the exclusive advisory lock).
  bool writable() const { return writable_; }

  const std::string& path() const { return path_; }

  /// Writer-open counter from the header (bumped once per writer Open).
  uint64_t generation() const { return generation_; }

  PersistentFeatureStoreStats Stats() const ZOMBIE_EXCLUDES(mu_);

  /// Publishes Stats() into `metrics` as gauges under "store.*": hits,
  /// misses, appends, recovered, invalidated, corrupt_skipped, entries,
  /// hit_rate. Snapshot semantics (safe to export repeatedly). No-op when
  /// `metrics` is null.
  void ExportMetrics(MetricsRegistry* metrics) const;

 private:
  PersistentFeatureStore(std::string path,
                         PersistentFeatureStoreOptions options);

  /// Creates or validates the file and runs the recovery scan. Called
  /// once from Open before the object is shared.
  Status Init() ZOMBIE_EXCLUDES(mu_);
  /// Writes a fresh header + zeroed bucket index (never shrinks the
  /// file). Writer role only.
  Status ColdStartLocked() ZOMBIE_REQUIRES(mu_);
  /// Walks every bucket chain: validates records, unlinks invalidated
  /// fingerprints (writer), truncates at corruption, recomputes the arena
  /// watermark.
  void RecoverLocked() ZOMBIE_REQUIRES(mu_);
  /// Validates one record at `offset` against the current mapping; fills
  /// `*next` and `*record_end` on success.
  bool ValidateRecordLocked(uint64_t offset, uint64_t* next,
                            uint64_t* record_end) const
      ZOMBIE_REQUIRES_SHARED(mu_);
  /// Chain search; returns the record offset or 0.
  uint64_t FindLocked(uint64_t pipeline_fingerprint, uint32_t doc_id) const
      ZOMBIE_REQUIRES_SHARED(mu_);

  const std::string path_;
  const PersistentFeatureStoreOptions options_;

  /// Writer-role advisory lock (held for the store's lifetime); empty in
  /// reader role.
  FileLock write_lock_;
  bool writable_ = false;
  /// Set when the store runs with no usable mapping (reader role with a
  /// missing or unmappable file): every lookup misses, every append drops.
  bool detached_ = false;
  uint64_t generation_ = 0;

  mutable SharedMutex mu_;
  MmapFile file_ ZOMBIE_GUARDED_BY(mu_);
  /// Fixed per-open layout (from the validated header).
  uint64_t num_buckets_ ZOMBIE_GUARDED_BY(mu_) = 0;
  uint64_t arena_offset_ ZOMBIE_GUARDED_BY(mu_) = 0;
  /// Next append position (absolute file offset), recomputed at open.
  uint64_t arena_used_ ZOMBIE_GUARDED_BY(mu_) = 0;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> appends_{0};
  std::atomic<uint64_t> recovered_{0};
  std::atomic<uint64_t> invalidated_{0};
  std::atomic<uint64_t> corrupt_skipped_{0};
  std::atomic<uint64_t> entries_{0};
};

}  // namespace zombie

#endif  // ZOMBIE_FEATUREENG_PERSISTENT_FEATURE_STORE_H_
