#include "featureeng/pipeline.h"

#include "text/term_counts.h"
#include "util/logging.h"
#include "util/random.h"

namespace zombie {

FeaturePipeline::FeaturePipeline(std::string name) : name_(std::move(name)) {}

FeaturePipeline& FeaturePipeline::Add(
    std::unique_ptr<FeatureExtractor> extractor) {
  ZCHECK(extractor != nullptr);
  uint32_t offset =
      extractors_.empty()
          ? 0
          : offsets_.back() + extractors_.back()->dimension();
  offsets_.push_back(offset);
  extractors_.push_back(std::move(extractor));
  return *this;
}

SparseVector FeaturePipeline::Extract(const Document& doc,
                                      const Corpus& corpus) const {
  TermCounts assembled;
  TermCounts local;
  for (size_t i = 0; i < extractors_.size(); ++i) {
    local.clear();
    extractors_[i]->Extract(doc, corpus, &local);
    uint32_t dim = extractors_[i]->dimension();
    for (const auto& [idx, value] : local) {
      ZCHECK_LT(idx, dim) << "extractor " << extractors_[i]->name()
                          << " emitted an out-of-range index";
      assembled.emplace_back(offsets_[i] + idx, value);
    }
  }
  SparseVector v = SparseVector::FromPairs(std::move(assembled));
  if (l2_normalize_) {
    double norm = v.L2Norm();
    if (norm > 0.0) v.Scale(1.0 / norm);
  }
  return v;
}

double FeaturePipeline::total_cost_factor() const {
  double total = 0.0;
  for (const auto& e : extractors_) total += e->cost_factor();
  return total;
}

int64_t FeaturePipeline::ExtractionCostMicros(const Document& doc) const {
  double cost =
      static_cast<double>(doc.extraction_cost_micros) * total_cost_factor();
  return cost < 0.0 ? 0 : static_cast<int64_t>(cost);
}

uint32_t FeaturePipeline::dimension() const {
  if (extractors_.empty()) return 0;
  return offsets_.back() + extractors_.back()->dimension();
}

const FeatureExtractor& FeaturePipeline::extractor(size_t i) const {
  ZCHECK_LT(i, extractors_.size());
  return *extractors_[i];
}

uint64_t FeaturePipeline::Fingerprint() const {
  // Seed constant keeps an empty pipeline's fingerprint distinct from 0.
  uint64_t fp = 0x5a4d4249u;  // "ZMBI"
  for (const auto& e : extractors_) fp = HashCombine(fp, e->Fingerprint());
  return HashCombine(fp, l2_normalize_ ? 1u : 0u);
}

std::string FeaturePipeline::Description() const {
  std::string out;
  for (size_t i = 0; i < extractors_.size(); ++i) {
    if (i) out += " + ";
    out += extractors_[i]->name();
  }
  return out.empty() ? "(empty)" : out;
}

}  // namespace zombie
