#ifndef ZOMBIE_INDEX_SIGNATURE_H_
#define ZOMBIE_INDEX_SIGNATURE_H_

#include <cstdint>
#include <vector>

#include "data/corpus.h"
#include "data/document.h"

namespace zombie {

/// Knobs for the cheap per-item signature used by content-based groupers.
///
/// Index construction must cost far less than full feature extraction for
/// Zombie's offline indexing to amortize: the signature therefore reads only
/// a *prefix* of each document's tokens and hashes them into a small dense
/// vector. `cost_fraction` is the modeled virtual cost of computing one
/// signature relative to fully extracting the item; it is charged to the
/// one-time index-construction budget reported by E8.
struct SignatureConfig {
  uint32_t dimensions = 128;
  size_t max_tokens = 200;
  bool include_length = true;
  bool include_domain = true;
  bool l2_normalize = true;
  /// Weight each token by its inverse document frequency before hashing
  /// (computed in a first pass over the corpus). Without it, the Zipf head
  /// of the common vocabulary drowns the topical signal and k-means
  /// clusters on noise; with it, clusters track topics.
  bool use_idf = true;
  double cost_fraction = 0.05;
  uint64_t salt = 0x516E4A7572ULL;
};

/// Dense signature of one document under `config`. `idf` supplies the
/// per-token-id weights when config.use_idf is set (pass nullptr or an
/// empty vector for unweighted hashing).
std::vector<double> ComputeSignature(const Document& doc,
                                     const SignatureConfig& config,
                                     const std::vector<double>* idf = nullptr);

/// Signatures for every document, plus the modeled virtual cost of the
/// scan (sum of cost_fraction * per-item extraction cost).
struct SignatureMatrix {
  std::vector<std::vector<double>> rows;
  int64_t virtual_cost_micros = 0;
};

SignatureMatrix ComputeSignatures(const Corpus& corpus,
                                  const SignatureConfig& config);

/// Signatures over the corpus prefix [0, prefix_size) only, plus the IDF
/// table computed from that prefix (empty when config.use_idf is off).
/// Streaming groupers freeze this prefix IDF at base-build time and reuse
/// it for every later arrival — group geometry must not drift with data
/// the run had not seen when the index was built. With prefix_size ==
/// corpus.size() this is exactly ComputeSignatures.
struct PrefixSignatures {
  SignatureMatrix matrix;
  std::vector<double> idf;
};

PrefixSignatures ComputeSignaturesForPrefix(const Corpus& corpus,
                                            size_t prefix_size,
                                            const SignatureConfig& config);

}  // namespace zombie

#endif  // ZOMBIE_INDEX_SIGNATURE_H_
