#ifndef ZOMBIE_INDEX_RANDOM_GROUPER_H_
#define ZOMBIE_INDEX_RANDOM_GROUPER_H_

#include <cstdint>
#include <string>

#include "index/grouper.h"

namespace zombie {

/// Uniform random partition into `num_groups` near-equal groups. Carries
/// no usefulness signal by construction — the control grouper: Zombie over
/// random groups should degrade to random scanning.
class RandomGrouper : public Grouper {
 public:
  RandomGrouper(size_t num_groups, uint64_t seed);

  GroupingResult Group(const Corpus& corpus) override;
  std::string name() const override;

 private:
  size_t num_groups_;
  uint64_t seed_;
};

}  // namespace zombie

#endif  // ZOMBIE_INDEX_RANDOM_GROUPER_H_
