#ifndef ZOMBIE_INDEX_METADATA_GROUPER_H_
#define ZOMBIE_INDEX_METADATA_GROUPER_H_

#include <cstdint>
#include <string>

#include "index/grouper.h"

namespace zombie {

/// Groups documents by metadata (the domain / hostname field) without
/// reading content at all — the cheapest possible index. When more domains
/// exist than `max_groups`, domains are folded together by hash.
class MetadataGrouper : public Grouper {
 public:
  explicit MetadataGrouper(size_t max_groups = 64);

  GroupingResult Group(const Corpus& corpus) override;
  std::string name() const override;

 private:
  size_t max_groups_;
};

}  // namespace zombie

#endif  // ZOMBIE_INDEX_METADATA_GROUPER_H_
