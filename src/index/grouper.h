#ifndef ZOMBIE_INDEX_GROUPER_H_
#define ZOMBIE_INDEX_GROUPER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/corpus.h"
#include "util/status.h"

namespace zombie {

/// Output of offline index construction: the corpus partitioned (or, for
/// inverted-index groupers, covered — groups may overlap) into index
/// groups, each of which becomes one bandit arm.
struct GroupingResult {
  /// groups[g] lists document indices belonging to group g. Every document
  /// index must appear in at least one group; duplicates across groups are
  /// allowed, duplicates within a group are not.
  std::vector<std::vector<uint32_t>> groups;
  /// Grouper identifier ("kmeans64", "token", ...).
  std::string method;
  /// Wall-clock cost actually spent building the index (bookkeeping,
  /// clustering CPU).
  int64_t build_wall_micros = 0;
  /// Modeled virtual cost of the raw-data reads the build performed (e.g.
  /// signature scans). Charged once per corpus, amortized across the
  /// session's revisions in E8.
  int64_t build_virtual_micros = 0;

  size_t num_groups() const { return groups.size(); }

  /// Checks the coverage/duplicate invariants against a corpus of
  /// `corpus_size` documents.
  [[nodiscard]] Status Validate(size_t corpus_size) const;
};

/// Offline index construction strategy (the "index groups" of the paper).
class Grouper {
 public:
  virtual ~Grouper() = default;

  /// Builds index groups over the corpus. Implementations must fill
  /// build_*_micros and satisfy GroupingResult::Validate.
  virtual GroupingResult Group(const Corpus& corpus) = 0;

  virtual std::string name() const = 0;
};

}  // namespace zombie

#endif  // ZOMBIE_INDEX_GROUPER_H_
