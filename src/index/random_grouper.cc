#include "index/random_grouper.h"

#include <vector>

#include "util/clock.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"

namespace zombie {

RandomGrouper::RandomGrouper(size_t num_groups, uint64_t seed)
    : num_groups_(num_groups), seed_(seed) {
  ZCHECK_GE(num_groups, 1u);
}

GroupingResult RandomGrouper::Group(const Corpus& corpus) {
  Stopwatch watch;
  Rng rng(seed_);
  std::vector<uint32_t> order(corpus.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<uint32_t>(i);
  rng.Shuffle(&order);

  GroupingResult result;
  result.method = name();
  size_t k = std::min(num_groups_, std::max<size_t>(corpus.size(), 1));
  result.groups.resize(k);
  for (size_t i = 0; i < order.size(); ++i) {
    result.groups[i % k].push_back(order[i]);
  }
  // No raw-data reads: random grouping only touches ids.
  result.build_virtual_micros = 0;
  result.build_wall_micros = watch.ElapsedMicros();
  return result;
}

std::string RandomGrouper::name() const {
  return StrFormat("random%zu", num_groups_);
}

}  // namespace zombie
