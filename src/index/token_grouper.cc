#include "index/token_grouper.h"

#include <algorithm>
#include <vector>

#include "util/clock.h"
#include "util/logging.h"

namespace zombie {

TokenGrouper::TokenGrouper(TokenGrouperOptions options) : options_(options) {
  ZCHECK_GE(options.max_groups, 1u);
  ZCHECK_GE(options.min_df_fraction, 0.0);
  ZCHECK_LE(options.max_df_fraction, 1.0);
  ZCHECK_LT(options.min_df_fraction, options.max_df_fraction);
}

GroupingResult TokenGrouper::Group(const Corpus& corpus) {
  Stopwatch watch;
  GroupingResult result;
  result.method = name();
  const size_t n = corpus.size();
  if (n == 0) {
    result.build_wall_micros = watch.ElapsedMicros();
    return result;
  }

  // Pass 1: document frequencies (this reads raw token streams, so it is
  // charged to the virtual index-construction budget like a signature
  // scan: a cheap fraction of full extraction).
  std::vector<uint32_t> doc_freq(corpus.vocabulary().size(), 0);
  double virtual_cost = 0.0;
  std::vector<uint32_t> scratch;
  for (const Document& doc : corpus.documents()) {
    scratch.assign(doc.tokens.begin(), doc.tokens.end());
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
    for (uint32_t tok : scratch) {
      if (tok < doc_freq.size()) ++doc_freq[tok];
    }
    virtual_cost += 0.05 * static_cast<double>(doc.extraction_cost_micros);
  }

  // Seeded terms first (engineer-provided task hints), then tokens in the
  // DF band by descending coverage.
  std::vector<uint32_t> candidates;
  std::vector<uint8_t> taken(doc_freq.size(), 0);
  for (const std::string& term : options_.seed_terms) {
    uint32_t id = corpus.vocabulary().Lookup(term);
    if (id != Vocabulary::kUnknownTerm && doc_freq[id] > 0 && !taken[id]) {
      candidates.push_back(id);
      taken[id] = 1;
    }
  }
  const uint32_t min_df = static_cast<uint32_t>(
      options_.min_df_fraction * static_cast<double>(n));
  const uint32_t max_df = static_cast<uint32_t>(
      options_.max_df_fraction * static_cast<double>(n));
  std::vector<uint32_t> band;
  for (uint32_t tok = 0; tok < doc_freq.size(); ++tok) {
    if (!taken[tok] && doc_freq[tok] > std::max<uint32_t>(min_df, 1) &&
        doc_freq[tok] <= std::max<uint32_t>(max_df, 2)) {
      band.push_back(tok);
    }
  }
  std::sort(band.begin(), band.end(), [&doc_freq](uint32_t a, uint32_t b) {
    if (doc_freq[a] != doc_freq[b]) return doc_freq[a] > doc_freq[b];
    return a < b;
  });
  for (uint32_t tok : band) {
    if (candidates.size() >= options_.max_groups) break;
    candidates.push_back(tok);
  }
  std::vector<int32_t> token_to_group(doc_freq.size(), -1);
  for (size_t g = 0; g < candidates.size(); ++g) {
    token_to_group[candidates[g]] = static_cast<int32_t>(g);
  }

  // Pass 2: populate groups (each doc at most once per group) + catch-all.
  result.groups.assign(candidates.size() + 1, {});
  std::vector<uint8_t> in_group(candidates.size(), 0);
  for (size_t i = 0; i < n; ++i) {
    const Document& doc = corpus.doc(i);
    bool covered = false;
    std::fill(in_group.begin(), in_group.end(), 0);
    for (uint32_t tok : doc.tokens) {
      int32_t g = tok < token_to_group.size() ? token_to_group[tok] : -1;
      if (g >= 0 && !in_group[static_cast<size_t>(g)]) {
        in_group[static_cast<size_t>(g)] = 1;
        result.groups[static_cast<size_t>(g)].push_back(
            static_cast<uint32_t>(i));
        covered = true;
      }
    }
    if (!covered) {
      result.groups.back().push_back(static_cast<uint32_t>(i));
    }
  }
  // Drop an empty catch-all (everything was covered).
  if (result.groups.back().empty()) result.groups.pop_back();

  result.build_virtual_micros = static_cast<int64_t>(virtual_cost);
  result.build_wall_micros = watch.ElapsedMicros();
  return result;
}

}  // namespace zombie
