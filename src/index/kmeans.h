#ifndef ZOMBIE_INDEX_KMEANS_H_
#define ZOMBIE_INDEX_KMEANS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace zombie {

class Rng;

/// Configuration for Lloyd's k-means with k-means++ seeding.
struct KMeansConfig {
  size_t k = 16;
  size_t max_iterations = 25;
  /// Stop when no assignment changes (always checked) or when the relative
  /// inertia improvement falls below this threshold.
  double tolerance = 1e-4;
  uint64_t seed = 7;
};

/// Result of one clustering run.
struct KMeansResult {
  std::vector<uint32_t> assignments;            // per row: cluster id < k
  std::vector<std::vector<double>> centroids;   // k rows (possibly empty cluster)
  double inertia = 0.0;                          // sum of squared distances
  size_t iterations = 0;
};

/// Clusters dense rows (all the same dimension) into `k` groups. If k >=
/// #rows, each row gets its own cluster. Empty clusters are re-seeded from
/// the point farthest from its centroid. Deterministic given config.seed.
KMeansResult RunKMeans(const std::vector<std::vector<double>>& rows,
                       const KMeansConfig& config);

/// Squared Euclidean distance between equal-length dense vectors.
double SquaredL2(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace zombie

#endif  // ZOMBIE_INDEX_KMEANS_H_
