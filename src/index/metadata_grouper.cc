#include "index/metadata_grouper.h"

#include <algorithm>
#include <vector>

#include "util/clock.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"

namespace zombie {

MetadataGrouper::MetadataGrouper(size_t max_groups)
    : max_groups_(max_groups) {
  ZCHECK_GE(max_groups, 1u);
}

GroupingResult MetadataGrouper::Group(const Corpus& corpus) {
  Stopwatch watch;
  GroupingResult result;
  result.method = name();
  if (corpus.empty()) {
    result.build_wall_micros = watch.ElapsedMicros();
    return result;
  }
  size_t domains = std::max<size_t>(corpus.num_domains(), 1);
  size_t k = std::min(max_groups_, domains);
  result.groups.resize(k);
  for (size_t i = 0; i < corpus.size(); ++i) {
    uint32_t domain = corpus.doc(i).domain;
    size_t g = domains <= k
                   ? domain % k
                   : static_cast<size_t>(HashCombine(domain, 0x4D455441ULL) % k);
    result.groups[g].push_back(static_cast<uint32_t>(i));
  }
  // Drop empty groups (unused domains).
  result.groups.erase(
      std::remove_if(result.groups.begin(), result.groups.end(),
                     [](const auto& g) { return g.empty(); }),
      result.groups.end());
  // Metadata reads are free relative to extraction.
  result.build_virtual_micros = 0;
  result.build_wall_micros = watch.ElapsedMicros();
  return result;
}

std::string MetadataGrouper::name() const {
  return StrFormat("metadata%zu", max_groups_);
}

}  // namespace zombie
