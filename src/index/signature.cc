#include "index/signature.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/random.h"

namespace zombie {

std::vector<double> ComputeSignature(const Document& doc,
                                     const SignatureConfig& config,
                                     const std::vector<double>* idf) {
  ZCHECK_GT(config.dimensions, 0u);
  // Layout: [hashed token weights | length bucket | domain hash] — the two
  // scalar channels live in the last dims when enabled.
  uint32_t extra = (config.include_length ? 1 : 0) +
                   (config.include_domain ? 1 : 0);
  ZCHECK_GT(config.dimensions, extra);
  uint32_t token_dims = config.dimensions - extra;

  std::vector<double> sig(config.dimensions, 0.0);
  size_t limit = std::min(config.max_tokens, doc.tokens.size());
  for (size_t i = 0; i < limit; ++i) {
    uint32_t tok = doc.tokens[i];
    double w = 1.0;
    if (idf != nullptr && tok < idf->size()) w = (*idf)[tok];
    uint64_t h = HashCombine(tok, config.salt);
    sig[h % token_dims] += w;
  }
  if (config.l2_normalize) {
    double norm_sq = 0.0;
    for (uint32_t i = 0; i < token_dims; ++i) norm_sq += sig[i] * sig[i];
    if (norm_sq > 0.0) {
      double inv = 1.0 / std::sqrt(norm_sq);
      for (uint32_t i = 0; i < token_dims; ++i) sig[i] *= inv;
    }
  }
  uint32_t next = token_dims;
  if (config.include_length) {
    // Log-length, scaled to roughly [0, 1] for typical pages.
    sig[next++] =
        std::log2(static_cast<double>(doc.tokens.size()) + 1.0) / 16.0;
  }
  if (config.include_domain) {
    uint64_t h = HashCombine(doc.domain, config.salt ^ 0xD0D0ULL);
    // A scalar domain fingerprint in [0, 1): identical domains coincide,
    // different domains usually differ — enough for k-means to exploit.
    sig[next++] = static_cast<double>(h % 4096) / 4096.0;
  }
  return sig;
}

SignatureMatrix ComputeSignatures(const Corpus& corpus,
                                  const SignatureConfig& config) {
  return ComputeSignaturesForPrefix(corpus, corpus.size(), config)
      .matrix;
}

PrefixSignatures ComputeSignaturesForPrefix(const Corpus& corpus,
                                            size_t prefix_size,
                                            const SignatureConfig& config) {
  ZCHECK_LE(prefix_size, corpus.size());
  PrefixSignatures out;
  SignatureMatrix& m = out.matrix;
  m.rows.reserve(prefix_size);
  double virtual_cost = 0.0;

  // Optional first pass: document frequencies over the signature prefix.
  std::vector<double>& idf = out.idf;
  if (config.use_idf && prefix_size > 0) {
    std::vector<uint32_t> df(corpus.vocabulary().size(), 0);
    std::vector<uint32_t> scratch;
    for (size_t i = 0; i < prefix_size; ++i) {
      const Document& doc = corpus.doc(i);
      size_t limit = std::min(config.max_tokens, doc.tokens.size());
      scratch.assign(doc.tokens.begin(),
                     doc.tokens.begin() + static_cast<ptrdiff_t>(limit));
      std::sort(scratch.begin(), scratch.end());
      scratch.erase(std::unique(scratch.begin(), scratch.end()),
                    scratch.end());
      for (uint32_t tok : scratch) {
        if (tok < df.size()) ++df[tok];
      }
    }
    double n = static_cast<double>(prefix_size);
    idf.resize(df.size());
    for (size_t t = 0; t < df.size(); ++t) {
      idf[t] = std::log((1.0 + n) / (1.0 + static_cast<double>(df[t])));
    }
    // The DF pass re-reads the prefixes; charge it like a second scan.
    virtual_cost = 0.0;  // accumulated below per document, doubled
  }

  const std::vector<double>* idf_ptr =
      (config.use_idf && !idf.empty()) ? &idf : nullptr;
  double passes = config.use_idf ? 2.0 : 1.0;
  for (size_t i = 0; i < prefix_size; ++i) {
    const Document& doc = corpus.doc(i);
    m.rows.push_back(ComputeSignature(doc, config, idf_ptr));
    virtual_cost += passes * config.cost_fraction *
                    static_cast<double>(doc.extraction_cost_micros);
  }
  m.virtual_cost_micros = static_cast<int64_t>(virtual_cost);
  return out;
}

}  // namespace zombie
