#include "index/kmeans_grouper.h"

#include "util/clock.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace zombie {

KMeansGrouper::KMeansGrouper(size_t num_groups, uint64_t seed,
                             SignatureConfig signature_config)
    : num_groups_(num_groups),
      seed_(seed),
      signature_config_(signature_config) {
  ZCHECK_GE(num_groups, 1u);
}

GroupingResult KMeansGrouper::Group(const Corpus& corpus) {
  Stopwatch watch;
  GroupingResult result;
  result.method = name();
  if (corpus.empty()) {
    result.groups.resize(0);
    result.build_wall_micros = watch.ElapsedMicros();
    return result;
  }

  SignatureMatrix sigs = ComputeSignatures(corpus, signature_config_);

  KMeansConfig kcfg;
  kcfg.k = std::min(num_groups_, corpus.size());
  kcfg.seed = seed_;
  KMeansResult km = RunKMeans(sigs.rows, kcfg);

  result.groups.resize(kcfg.k);
  for (size_t i = 0; i < km.assignments.size(); ++i) {
    ZCHECK_LT(km.assignments[i], kcfg.k);
    result.groups[km.assignments[i]].push_back(static_cast<uint32_t>(i));
  }
  result.build_virtual_micros = sigs.virtual_cost_micros;
  result.build_wall_micros = watch.ElapsedMicros();
  return result;
}

std::string KMeansGrouper::name() const {
  return StrFormat("kmeans%zu", num_groups_);
}

}  // namespace zombie
