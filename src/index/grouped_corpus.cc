#include "index/grouped_corpus.h"

#include "util/logging.h"
#include "util/random.h"

namespace zombie {

GroupedCorpus::GroupedCorpus(const Corpus* corpus, GroupingResult grouping,
                             uint64_t seed, bool shuffle)
    : corpus_(corpus), grouping_(std::move(grouping)) {
  ZCHECK(corpus_ != nullptr);
  ZCHECK_OK(grouping_.Validate(corpus_->size()));
  Rng rng(seed);
  groups_ = grouping_.groups;
  if (shuffle) {
    for (auto& g : groups_) rng.Shuffle(&g);
  }
  cursors_.assign(groups_.size(), 0);
  processed_.assign(corpus_->size(), 0);
}

size_t GroupedCorpus::group_size(size_t g) const {
  ZCHECK_LT(g, groups_.size());
  return groups_[g].size();
}

std::optional<uint32_t> GroupedCorpus::NextFromGroup(size_t g) {
  ZCHECK_LT(g, groups_.size());
  size_t& cursor = cursors_[g];
  const auto& items = groups_[g];
  while (cursor < items.size()) {
    uint32_t doc = items[cursor++];
    if (!processed_[doc]) {
      processed_[doc] = 1;
      ++num_processed_;
      return doc;
    }
  }
  return std::nullopt;
}

bool GroupedCorpus::GroupExhausted(size_t g) {
  ZCHECK_LT(g, groups_.size());
  size_t& cursor = cursors_[g];
  const auto& items = groups_[g];
  // Skip over consumed items without taking one.
  while (cursor < items.size() && processed_[items[cursor]]) ++cursor;
  return cursor >= items.size();
}

void GroupedCorpus::PeekUnprocessed(size_t g, size_t max_items,
                                    std::vector<uint32_t>* out) const {
  ZCHECK_LT(g, groups_.size());
  out->clear();
  const auto& items = groups_[g];
  for (size_t i = cursors_[g]; i < items.size() && out->size() < max_items;
       ++i) {
    if (!processed_[items[i]]) out->push_back(items[i]);
  }
}

bool GroupedCorpus::AllExhausted() {
  for (size_t g = 0; g < groups_.size(); ++g) {
    if (!GroupExhausted(g)) return false;
  }
  return true;
}

void GroupedCorpus::MarkProcessed(uint32_t doc_index) {
  ZCHECK_LT(doc_index, processed_.size());
  if (!processed_[doc_index]) {
    processed_[doc_index] = 1;
    ++num_processed_;
  }
}

bool GroupedCorpus::IsProcessed(uint32_t doc_index) const {
  ZCHECK_LT(doc_index, processed_.size());
  return processed_[doc_index] != 0;
}

void GroupedCorpus::Reset() {
  cursors_.assign(groups_.size(), 0);
  processed_.assign(corpus_->size(), 0);
  num_processed_ = 0;
}

}  // namespace zombie
