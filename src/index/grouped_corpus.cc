#include "index/grouped_corpus.h"

#include "util/logging.h"
#include "util/random.h"

namespace zombie {

GroupedCorpus::GroupedCorpus(const Corpus* corpus, GroupingResult grouping,
                             uint64_t seed, bool shuffle)
    : GroupedCorpus(corpus, std::move(grouping), seed, shuffle,
                    corpus != nullptr ? corpus->size() : 0) {}

GroupedCorpus::GroupedCorpus(const Corpus* corpus, GroupingResult grouping,
                             uint64_t seed, bool shuffle, size_t base_size)
    : corpus_(corpus),
      grouping_(std::move(grouping)),
      base_size_(base_size) {
  ZCHECK(corpus_ != nullptr);
  ZCHECK_LE(base_size_, corpus_->size());
  ZCHECK_OK(grouping_.Validate(base_size_));
  // The base layout draws the identical Rng sequence the pre-arena
  // implementation drew (one Shuffle per group, in group order), then
  // inserts each group's items in that order — so the pop order of the
  // frozen base is byte-identical to the flat-vector era.
  Rng rng(seed);
  groups_.reserve(grouping_.groups.size());
  cursors_.reserve(grouping_.groups.size());
  std::vector<uint32_t> scratch;
  for (const std::vector<uint32_t>& members : grouping_.groups) {
    scratch = members;
    if (shuffle) rng.Shuffle(&scratch);
    AddGroup(scratch);
  }
  processed_.assign(corpus_->size(), 0);
}

int32_t GroupedCorpus::AllocateShard() {
  int32_t id = static_cast<int32_t>(shard_len_.size());
  arena_.resize(arena_.size() + kShardCapacity);
  shard_len_.push_back(0);
  shard_next_.push_back(-1);
  return id;
}

void GroupedCorpus::AppendToGroup(size_t g, uint32_t doc_index) {
  GroupIndex& group = groups_[g];
  if (group.tail < 0) {
    group.head = group.tail = AllocateShard();
  } else if (shard_len_[static_cast<size_t>(group.tail)] == kShardCapacity) {
    int32_t s = AllocateShard();
    shard_next_[static_cast<size_t>(group.tail)] = s;
    group.tail = s;
  }
  size_t tail = static_cast<size_t>(group.tail);
  arena_[tail * kShardCapacity + shard_len_[tail]] = doc_index;
  ++shard_len_[tail];
  ++group.size;
}

size_t GroupedCorpus::group_size(size_t g) const {
  ZCHECK_LT(g, groups_.size());
  return groups_[g].size;
}

std::optional<uint32_t> GroupedCorpus::NextFromGroup(size_t g) {
  ZCHECK_LT(g, groups_.size());
  Cursor& cur = cursors_[g];
  if (cur.shard < 0) {
    cur.shard = groups_[g].head;  // may still be -1 (empty group)
    cur.offset = 0;
  }
  while (cur.shard >= 0) {
    size_t s = static_cast<size_t>(cur.shard);
    while (cur.offset < shard_len_[s]) {
      uint32_t doc = arena_[s * kShardCapacity + cur.offset];
      ++cur.offset;
      if (!processed_[doc]) {
        processed_[doc] = 1;
        ++num_processed_;
        return doc;
      }
    }
    // A shard is only left behind once full: a partially filled tail may
    // still grow, so the cursor parks there until new items (or a new
    // chained shard) appear.
    if (shard_len_[s] < kShardCapacity || shard_next_[s] < 0) break;
    cur.shard = shard_next_[s];
    cur.offset = 0;
  }
  return std::nullopt;
}

bool GroupedCorpus::GroupExhausted(size_t g) {
  ZCHECK_LT(g, groups_.size());
  Cursor& cur = cursors_[g];
  if (cur.shard < 0) {
    cur.shard = groups_[g].head;
    cur.offset = 0;
  }
  while (cur.shard >= 0) {
    size_t s = static_cast<size_t>(cur.shard);
    // Skip over consumed items without taking one.
    while (cur.offset < shard_len_[s] &&
           processed_[arena_[s * kShardCapacity + cur.offset]]) {
      ++cur.offset;
    }
    if (cur.offset < shard_len_[s]) return false;
    if (shard_len_[s] < kShardCapacity || shard_next_[s] < 0) return true;
    cur.shard = shard_next_[s];
    cur.offset = 0;
  }
  return true;
}

void GroupedCorpus::PeekUnprocessed(size_t g, size_t max_items,
                                    std::vector<uint32_t>* out) const {
  ZCHECK_LT(g, groups_.size());
  out->clear();
  int32_t shard = cursors_[g].shard;
  uint32_t offset = cursors_[g].offset;
  if (shard < 0) {
    shard = groups_[g].head;
    offset = 0;
  }
  while (shard >= 0 && out->size() < max_items) {
    size_t s = static_cast<size_t>(shard);
    for (; offset < shard_len_[s] && out->size() < max_items; ++offset) {
      uint32_t doc = arena_[s * kShardCapacity + offset];
      if (!processed_[doc]) out->push_back(doc);
    }
    if (offset < shard_len_[s]) break;
    shard = shard_next_[s];
    offset = 0;
  }
}

bool GroupedCorpus::AllExhausted() {
  for (size_t g = 0; g < groups_.size(); ++g) {
    if (!GroupExhausted(g)) return false;
  }
  return true;
}

void GroupedCorpus::MarkProcessed(uint32_t doc_index) {
  ZCHECK_LT(doc_index, processed_.size());
  if (!processed_[doc_index]) {
    processed_[doc_index] = 1;
    ++num_processed_;
  }
}

bool GroupedCorpus::IsProcessed(uint32_t doc_index) const {
  ZCHECK_LT(doc_index, processed_.size());
  return processed_[doc_index] != 0;
}

void GroupedCorpus::Reset() {
  for (size_t g = 0; g < groups_.size(); ++g) {
    cursors_[g].shard = groups_[g].head;
    cursors_[g].offset = 0;
  }
  processed_.assign(corpus_->size(), 0);
  num_processed_ = 0;
}

void GroupedCorpus::AppendDocument(uint32_t doc_index,
                                   const std::vector<size_t>& groups) {
  ZCHECK_LT(doc_index, corpus_->size());
  ZCHECK_LT(doc_index, processed_.size());
  for (size_t g : groups) {
    ZCHECK_LT(g, groups_.size());
    AppendToGroup(g, doc_index);
  }
}

size_t GroupedCorpus::AddGroup(const std::vector<uint32_t>& members) {
  size_t g = groups_.size();
  groups_.emplace_back();
  cursors_.emplace_back();
  for (uint32_t doc : members) {
    ZCHECK_LT(doc, corpus_->size());
    AppendToGroup(g, doc);
  }
  return g;
}

size_t GroupedCorpus::num_shards(size_t g) const {
  ZCHECK_LT(g, groups_.size());
  size_t n = 0;
  for (int32_t s = groups_[g].head; s >= 0;
       s = shard_next_[static_cast<size_t>(s)]) {
    ++n;
  }
  return n;
}

GroupedCorpus::ShardView GroupedCorpus::shard(size_t g, size_t ordinal) const {
  ZCHECK_LT(g, groups_.size());
  int32_t s = groups_[g].head;
  for (size_t i = 0; i < ordinal && s >= 0; ++i) {
    s = shard_next_[static_cast<size_t>(s)];
  }
  ZCHECK_GE(s, 0) << "shard ordinal out of range";
  ShardView view;
  view.docs = arena_.data() + static_cast<size_t>(s) * kShardCapacity;
  view.size = shard_len_[static_cast<size_t>(s)];
  return view;
}

}  // namespace zombie
