#include "index/grouper.h"

#include <algorithm>

#include "util/string_util.h"

namespace zombie {

Status GroupingResult::Validate(size_t corpus_size) const {
  std::vector<uint8_t> covered(corpus_size, 0);
  for (size_t g = 0; g < groups.size(); ++g) {
    std::vector<uint32_t> sorted = groups[g];
    std::sort(sorted.begin(), sorted.end());
    for (size_t i = 0; i < sorted.size(); ++i) {
      if (sorted[i] >= corpus_size) {
        return Status::Internal(StrFormat(
            "group %zu references doc %u beyond corpus size %zu", g,
            sorted[i], corpus_size));
      }
      if (i > 0 && sorted[i] == sorted[i - 1]) {
        return Status::Internal(
            StrFormat("group %zu contains doc %u twice", g, sorted[i]));
      }
      covered[sorted[i]] = 1;
    }
  }
  for (size_t i = 0; i < corpus_size; ++i) {
    if (!covered[i]) {
      return Status::Internal(
          StrFormat("doc %zu not covered by any group", i));
    }
  }
  return Status::OK();
}

}  // namespace zombie
