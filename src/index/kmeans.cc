#include "index/kmeans.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"
#include "util/random.h"

namespace zombie {

double SquaredL2(const std::vector<double>& a, const std::vector<double>& b) {
  ZCHECK_EQ(a.size(), b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

namespace {

// k-means++ seeding: first centroid uniform, then proportional to squared
// distance from the nearest chosen centroid.
std::vector<std::vector<double>> SeedPlusPlus(
    const std::vector<std::vector<double>>& rows, size_t k, Rng* rng) {
  std::vector<std::vector<double>> centroids;
  centroids.reserve(k);
  centroids.push_back(rows[rng->NextBelow(rows.size())]);
  std::vector<double> min_dist(rows.size(),
                               std::numeric_limits<double>::max());
  while (centroids.size() < k) {
    const auto& latest = centroids.back();
    for (size_t i = 0; i < rows.size(); ++i) {
      min_dist[i] = std::min(min_dist[i], SquaredL2(rows[i], latest));
    }
    size_t pick = rng->NextDiscrete(min_dist);
    if (pick >= rows.size()) {
      // All distances zero (duplicate points): fall back to uniform.
      pick = rng->NextBelow(rows.size());
    }
    centroids.push_back(rows[pick]);
  }
  return centroids;
}

}  // namespace

KMeansResult RunKMeans(const std::vector<std::vector<double>>& rows,
                       const KMeansConfig& config) {
  ZCHECK(!rows.empty()) << "k-means needs at least one row";
  ZCHECK_GE(config.k, 1u);
  const size_t n = rows.size();
  const size_t dim = rows[0].size();
  for (const auto& r : rows) ZCHECK_EQ(r.size(), dim);

  KMeansResult result;
  Rng rng(config.seed);

  if (config.k >= n) {
    // Degenerate: one point per cluster (trailing clusters empty).
    result.assignments.resize(n);
    result.centroids.assign(config.k, std::vector<double>(dim, 0.0));
    for (size_t i = 0; i < n; ++i) {
      result.assignments[i] = static_cast<uint32_t>(i);
      result.centroids[i] = rows[i];
    }
    result.inertia = 0.0;
    return result;
  }

  result.centroids = SeedPlusPlus(rows, config.k, &rng);
  result.assignments.assign(n, 0);
  double prev_inertia = std::numeric_limits<double>::max();

  for (size_t iter = 0; iter < config.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step.
    bool changed = false;
    double inertia = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::max();
      uint32_t best_c = 0;
      for (size_t c = 0; c < config.k; ++c) {
        double d = SquaredL2(rows[i], result.centroids[c]);
        if (d < best) {
          best = d;
          best_c = static_cast<uint32_t>(c);
        }
      }
      if (result.assignments[i] != best_c) {
        result.assignments[i] = best_c;
        changed = true;
      }
      inertia += best;
    }
    result.inertia = inertia;

    // Update step.
    std::vector<std::vector<double>> sums(config.k,
                                          std::vector<double>(dim, 0.0));
    std::vector<size_t> counts(config.k, 0);
    for (size_t i = 0; i < n; ++i) {
      uint32_t c = result.assignments[i];
      ++counts[c];
      for (size_t d = 0; d < dim; ++d) sums[c][d] += rows[i][d];
    }
    for (size_t c = 0; c < config.k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster from the point farthest from its
        // current centroid (a standard fix that keeps k live clusters).
        size_t far = 0;
        double far_d = -1.0;
        for (size_t i = 0; i < n; ++i) {
          double d =
              SquaredL2(rows[i], result.centroids[result.assignments[i]]);
          if (d > far_d) {
            far_d = d;
            far = i;
          }
        }
        result.centroids[c] = rows[far];
        continue;
      }
      for (size_t d = 0; d < dim; ++d) {
        result.centroids[c][d] =
            sums[c][d] / static_cast<double>(counts[c]);
      }
    }

    if (!changed) break;
    if (prev_inertia < std::numeric_limits<double>::max() &&
        prev_inertia > 0.0 &&
        (prev_inertia - inertia) / prev_inertia < config.tolerance) {
      break;
    }
    prev_inertia = inertia;
  }
  return result;
}

}  // namespace zombie
