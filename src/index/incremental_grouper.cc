#include "index/incremental_grouper.h"

#include <algorithm>
#include <utility>

#include "index/kmeans.h"
#include "util/clock.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"

namespace zombie {

// --------------------------------------------------------------------------
// IncrementalKMeansGrouper

IncrementalKMeansGrouper::IncrementalKMeansGrouper(
    IncrementalKMeansOptions options)
    : options_(options) {
  ZCHECK_GE(options.num_groups, 1u);
  ZCHECK_GE(options.split_threshold, 4u);
  ZCHECK_GE(options.max_groups, options.num_groups);
  ZCHECK_GE(options.split_kmeans_iterations, 1u);
}

GroupingResult IncrementalKMeansGrouper::GroupBase(const Corpus& corpus,
                                                   size_t base_size) {
  ZCHECK(!base_built_) << "GroupBase called twice";
  ZCHECK_GE(base_size, 1u);
  ZCHECK_LE(base_size, corpus.size());
  base_built_ = true;
  Stopwatch watch;
  GroupingResult result;
  result.method = name();

  PrefixSignatures sigs =
      ComputeSignaturesForPrefix(corpus, base_size, options_.signature);
  idf_ = std::move(sigs.idf);

  KMeansConfig kcfg;
  kcfg.k = std::min(options_.num_groups, base_size);
  kcfg.seed = options_.seed;
  KMeansResult km = RunKMeans(sigs.matrix.rows, kcfg);

  result.groups.resize(kcfg.k);
  centroids_ = std::move(km.centroids);
  member_docs_.resize(kcfg.k);
  member_sigs_.resize(kcfg.k);
  next_split_at_.assign(kcfg.k, options_.split_threshold);
  for (size_t i = 0; i < km.assignments.size(); ++i) {
    size_t g = km.assignments[i];
    ZCHECK_LT(g, kcfg.k);
    result.groups[g].push_back(static_cast<uint32_t>(i));
    member_docs_[g].push_back(static_cast<uint32_t>(i));
    member_sigs_[g].push_back(std::move(sigs.matrix.rows[i]));
  }
  result.build_virtual_micros = sigs.matrix.virtual_cost_micros;
  result.build_wall_micros = watch.ElapsedMicros();
  return result;
}

IngestAssignment IncrementalKMeansGrouper::AssignOrSplit(const Corpus& corpus,
                                                         uint32_t doc_index) {
  ZCHECK(base_built_) << "AssignOrSplit before GroupBase";
  ZCHECK_LT(doc_index, corpus.size());
  std::vector<double> sig = ComputeSignature(
      corpus.doc(doc_index), options_.signature,
      idf_.empty() ? nullptr : &idf_);

  // Nearest centroid, ties toward the lower group id (strict <).
  size_t best = 0;
  double best_dist = SquaredL2(sig, centroids_[0]);
  for (size_t g = 1; g < centroids_.size(); ++g) {
    double d = SquaredL2(sig, centroids_[g]);
    if (d < best_dist) {
      best_dist = d;
      best = g;
    }
  }

  // Running-mean centroid update: the centroid is the mean of everything
  // ever assigned to the group (base members + arrivals), updated in
  // arrival order — deterministic because arrival order is.
  std::vector<double>& centroid = centroids_[best];
  double n = static_cast<double>(member_docs_[best].size()) + 1.0;
  for (size_t d = 0; d < centroid.size(); ++d) {
    centroid[d] += (sig[d] - centroid[d]) / n;
  }
  member_docs_[best].push_back(doc_index);
  member_sigs_[best].push_back(std::move(sig));

  IngestAssignment out;
  out.groups.push_back(best);

  if (member_docs_[best].size() < next_split_at_[best] ||
      centroids_.size() >= options_.max_groups) {
    return out;
  }
  // Re-arm regardless of the attempt's outcome so a degenerate group
  // (identical signatures: 2-means leaves one side empty) does not retry
  // on every arrival.
  next_split_at_[best] =
      member_docs_[best].size() + options_.split_threshold;

  KMeansConfig split_cfg;
  split_cfg.k = 2;
  split_cfg.max_iterations = options_.split_kmeans_iterations;
  split_cfg.seed = HashCombine(options_.seed, 0x5154ULL + num_splits_);
  KMeansResult split = RunKMeans(member_sigs_[best], split_cfg);

  size_t count1 = 0;
  for (uint32_t a : split.assignments) count1 += a == 1;
  size_t count0 = split.assignments.size() - count1;
  if (count0 == 0 || count1 == 0) return out;  // degenerate: keep as-is

  // The smaller half moves to the new group (ties: cluster 1 moves, so
  // the lower-id cluster keeps the old arm's history).
  uint32_t moving = count1 <= count0 ? 1u : 0u;
  std::vector<uint32_t> stay_docs, move_docs;
  std::vector<std::vector<double>> stay_sigs, move_sigs;
  for (size_t i = 0; i < split.assignments.size(); ++i) {
    if (split.assignments[i] == moving) {
      move_docs.push_back(member_docs_[best][i]);
      move_sigs.push_back(std::move(member_sigs_[best][i]));
    } else {
      stay_docs.push_back(member_docs_[best][i]);
      stay_sigs.push_back(std::move(member_sigs_[best][i]));
    }
  }
  member_docs_[best] = std::move(stay_docs);
  member_sigs_[best] = std::move(stay_sigs);
  centroids_[best] = split.centroids[1 - moving];

  NewGroupSeed seed;
  seed.source_group = best;
  seed.members = move_docs;
  out.new_groups.push_back(std::move(seed));

  centroids_.push_back(split.centroids[moving]);
  member_docs_.push_back(std::move(move_docs));
  member_sigs_.push_back(std::move(move_sigs));
  next_split_at_.push_back(member_docs_.back().size() +
                           options_.split_threshold);
  ++num_splits_;
  return out;
}

std::string IncrementalKMeansGrouper::name() const {
  return StrFormat("ikmeans%zu", options_.num_groups);
}

std::unique_ptr<IncrementalGrouper> IncrementalKMeansGrouper::Clone() const {
  return std::make_unique<IncrementalKMeansGrouper>(*this);
}

// --------------------------------------------------------------------------
// IncrementalMetadataGrouper

IncrementalMetadataGrouper::IncrementalMetadataGrouper(
    IncrementalMetadataOptions options)
    : options_(options) {
  ZCHECK_GE(options.max_groups, 1u);
}

size_t IncrementalMetadataGrouper::GroupForDomain(
    uint32_t domain, std::vector<NewGroupSeed>* opened) {
  if (domain >= domain_to_group_.size()) {
    domain_to_group_.resize(domain + 1, -1);
  }
  int32_t g = domain_to_group_[domain];
  if (g >= 0) return static_cast<size_t>(g);
  size_t assigned;
  if (num_groups_ < options_.max_groups) {
    assigned = num_groups_++;
    if (opened != nullptr) {
      NewGroupSeed seed;  // brand-new domain: an arm with no history
      opened->push_back(std::move(seed));
    }
  } else {
    assigned = static_cast<size_t>(
        HashCombine(domain, 0x4D455441ULL) % num_groups_);
  }
  domain_to_group_[domain] = static_cast<int32_t>(assigned);
  return assigned;
}

GroupingResult IncrementalMetadataGrouper::GroupBase(const Corpus& corpus,
                                                     size_t base_size) {
  ZCHECK(!base_built_) << "GroupBase called twice";
  ZCHECK_GE(base_size, 1u);
  ZCHECK_LE(base_size, corpus.size());
  base_built_ = true;
  Stopwatch watch;
  GroupingResult result;
  result.method = name();
  // First-seen domain order opens groups (no empty-group dropping, unlike
  // the offline MetadataGrouper: the domain -> group map must stay stable
  // under later arrivals).
  std::vector<size_t> assignment(base_size, 0);
  for (size_t i = 0; i < base_size; ++i) {
    assignment[i] = GroupForDomain(corpus.doc(i).domain, nullptr);
  }
  result.groups.resize(num_groups_);
  for (size_t i = 0; i < base_size; ++i) {
    result.groups[assignment[i]].push_back(static_cast<uint32_t>(i));
  }
  // Metadata reads are free relative to extraction.
  result.build_virtual_micros = 0;
  result.build_wall_micros = watch.ElapsedMicros();
  return result;
}

IngestAssignment IncrementalMetadataGrouper::AssignOrSplit(
    const Corpus& corpus, uint32_t doc_index) {
  ZCHECK(base_built_) << "AssignOrSplit before GroupBase";
  ZCHECK_LT(doc_index, corpus.size());
  IngestAssignment out;
  size_t g = GroupForDomain(corpus.doc(doc_index).domain, &out.new_groups);
  out.groups.push_back(g);
  return out;
}

std::string IncrementalMetadataGrouper::name() const {
  return StrFormat("imeta%zu", options_.max_groups);
}

std::unique_ptr<IncrementalGrouper> IncrementalMetadataGrouper::Clone()
    const {
  return std::make_unique<IncrementalMetadataGrouper>(*this);
}

// --------------------------------------------------------------------------
// IncrementalTokenGrouper

IncrementalTokenGrouper::IncrementalTokenGrouper(TokenGrouperOptions options)
    : options_(options) {
  ZCHECK_GE(options.max_groups, 1u);
  ZCHECK_GE(options.min_df_fraction, 0.0);
  ZCHECK_LE(options.max_df_fraction, 1.0);
  ZCHECK_LT(options.min_df_fraction, options.max_df_fraction);
}

GroupingResult IncrementalTokenGrouper::GroupBase(const Corpus& corpus,
                                                  size_t base_size) {
  ZCHECK(!base_built_) << "GroupBase called twice";
  ZCHECK_GE(base_size, 1u);
  ZCHECK_LE(base_size, corpus.size());
  base_built_ = true;
  Stopwatch watch;
  GroupingResult result;
  result.method = name();

  // Base document frequencies (the same DF-band selection as the offline
  // TokenGrouper, restricted to the prefix the stream has revealed).
  std::vector<uint32_t> doc_freq(corpus.vocabulary().size(), 0);
  double virtual_cost = 0.0;
  std::vector<uint32_t> scratch;
  for (size_t i = 0; i < base_size; ++i) {
    const Document& doc = corpus.doc(i);
    scratch.assign(doc.tokens.begin(), doc.tokens.end());
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
    for (uint32_t tok : scratch) {
      if (tok < doc_freq.size()) ++doc_freq[tok];
    }
    virtual_cost += 0.05 * static_cast<double>(doc.extraction_cost_micros);
  }

  std::vector<uint32_t> candidates;
  std::vector<uint8_t> taken(doc_freq.size(), 0);
  for (const std::string& term : options_.seed_terms) {
    uint32_t id = corpus.vocabulary().Lookup(term);
    if (id != Vocabulary::kUnknownTerm && doc_freq[id] > 0 && !taken[id]) {
      candidates.push_back(id);
      taken[id] = 1;
    }
  }
  const uint32_t min_df = static_cast<uint32_t>(
      options_.min_df_fraction * static_cast<double>(base_size));
  const uint32_t max_df = static_cast<uint32_t>(
      options_.max_df_fraction * static_cast<double>(base_size));
  std::vector<uint32_t> band;
  for (uint32_t tok = 0; tok < doc_freq.size(); ++tok) {
    if (!taken[tok] && doc_freq[tok] > std::max<uint32_t>(min_df, 1) &&
        doc_freq[tok] <= std::max<uint32_t>(max_df, 2)) {
      band.push_back(tok);
    }
  }
  std::sort(band.begin(), band.end(), [&doc_freq](uint32_t a, uint32_t b) {
    if (doc_freq[a] != doc_freq[b]) return doc_freq[a] > doc_freq[b];
    return a < b;
  });
  for (uint32_t tok : band) {
    if (candidates.size() >= options_.max_groups) break;
    candidates.push_back(tok);
  }
  token_to_group_.assign(doc_freq.size(), -1);
  for (size_t g = 0; g < candidates.size(); ++g) {
    token_to_group_[candidates[g]] = static_cast<int32_t>(g);
  }
  num_token_groups_ = candidates.size();

  // Populate token groups + the catch-all, which — unlike the offline
  // grouper — is kept even when empty at base: later arrivals need it.
  result.groups.assign(num_token_groups_ + 1, {});
  std::vector<uint8_t> in_group(num_token_groups_, 0);
  for (size_t i = 0; i < base_size; ++i) {
    const Document& doc = corpus.doc(i);
    bool covered = false;
    std::fill(in_group.begin(), in_group.end(), 0);
    for (uint32_t tok : doc.tokens) {
      int32_t g = tok < token_to_group_.size() ? token_to_group_[tok] : -1;
      if (g >= 0 && !in_group[static_cast<size_t>(g)]) {
        in_group[static_cast<size_t>(g)] = 1;
        result.groups[static_cast<size_t>(g)].push_back(
            static_cast<uint32_t>(i));
        covered = true;
      }
    }
    if (!covered) {
      result.groups.back().push_back(static_cast<uint32_t>(i));
    }
  }
  result.build_virtual_micros = static_cast<int64_t>(virtual_cost);
  result.build_wall_micros = watch.ElapsedMicros();
  return result;
}

IngestAssignment IncrementalTokenGrouper::AssignOrSplit(const Corpus& corpus,
                                                        uint32_t doc_index) {
  ZCHECK(base_built_) << "AssignOrSplit before GroupBase";
  ZCHECK_LT(doc_index, corpus.size());
  IngestAssignment out;
  const Document& doc = corpus.doc(doc_index);
  // First-mention order, each group at most once (matching the base pass).
  std::vector<uint8_t> in_group(num_token_groups_, 0);
  for (uint32_t tok : doc.tokens) {
    int32_t g = tok < token_to_group_.size() ? token_to_group_[tok] : -1;
    if (g >= 0 && !in_group[static_cast<size_t>(g)]) {
      in_group[static_cast<size_t>(g)] = 1;
      out.groups.push_back(static_cast<size_t>(g));
    }
  }
  if (out.groups.empty()) out.groups.push_back(num_token_groups_);
  return out;
}

std::unique_ptr<IncrementalGrouper> IncrementalTokenGrouper::Clone() const {
  return std::make_unique<IncrementalTokenGrouper>(*this);
}

}  // namespace zombie
