#ifndef ZOMBIE_INDEX_ORACLE_GROUPER_H_
#define ZOMBIE_INDEX_ORACLE_GROUPER_H_

#include <string>

#include "index/grouper.h"

namespace zombie {

/// What hidden ground truth the oracle groups by.
enum class OracleMode {
  /// Two groups: positives and negatives. The tightest possible upper
  /// bound on what any grouping can achieve.
  kLabel,
  /// One group per latent topic; slightly weaker but closer to what a
  /// perfect content clustering could realistically reach.
  kTopic,
};

/// Cheating grouper that reads the generator's hidden fields. Never valid
/// as a real system component — it exists to bound the headroom of input
/// selection in E5 ("how much of the oracle gap does k-means close?").
class OracleGrouper : public Grouper {
 public:
  explicit OracleGrouper(OracleMode mode = OracleMode::kLabel);

  GroupingResult Group(const Corpus& corpus) override;
  std::string name() const override;

 private:
  OracleMode mode_;
};

}  // namespace zombie

#endif  // ZOMBIE_INDEX_ORACLE_GROUPER_H_
