#ifndef ZOMBIE_INDEX_INCREMENTAL_GROUPER_H_
#define ZOMBIE_INDEX_INCREMENTAL_GROUPER_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "data/corpus.h"
#include "index/grouped_corpus.h"
#include "index/grouper.h"
#include "index/signature.h"
#include "index/token_grouper.h"

namespace zombie {

/// Sentinel for NewGroupSeed::source_group when a group opens from scratch
/// (a never-seen metadata domain) rather than by splitting an existing one.
inline constexpr size_t kNoSourceGroup = std::numeric_limits<size_t>::max();

/// A group born mid-run. `members` seeds the new group's item list (copies
/// of documents that may also remain in `source_group` — splits copy
/// rather than move, and GroupedCorpus's global processed set dedups
/// consumption). Group ids are assigned in emission order: the engine
/// calls GroupedCorpus::AddGroup once per seed, in order, and the grouper
/// numbers its own bookkeeping identically.
struct NewGroupSeed {
  size_t source_group = kNoSourceGroup;
  std::vector<uint32_t> members;
};

/// What one arrival did to the index.
struct IngestAssignment {
  /// Existing groups the arrived document was appended to (possibly
  /// several for overlapping token groups; never empty).
  std::vector<size_t> groups;
  /// Groups opened by this arrival (splits or brand-new domains), in id
  /// order. Each becomes a new bandit arm.
  std::vector<NewGroupSeed> new_groups;
};

/// Online index construction: a base grouping built over the offline
/// prefix, then one AssignOrSplit call per arriving document. All
/// decisions are deterministic functions of (corpus, options, arrival
/// order) — no wall time, no out-of-band randomness — so streaming runs
/// stay byte-identical across thread counts and cache/store/SIMD modes.
///
/// Instances are stateful (centroids, domain maps, token tables evolve
/// with the stream). The engine clones the primed grouper per run, so one
/// prototype can serve many concurrent trials; Clone() must copy the full
/// post-GroupBase state.
class IncrementalGrouper {
 public:
  virtual ~IncrementalGrouper() = default;

  /// Builds the base grouping over documents [0, base_size) and primes the
  /// incremental state. Must be called exactly once, before any
  /// AssignOrSplit. The result satisfies GroupingResult::Validate
  /// (base_size).
  virtual GroupingResult GroupBase(const Corpus& corpus,
                                   size_t base_size) = 0;

  /// Routes one arrived document (a corpus index >= the base size) into
  /// the index: appends it to existing groups, and/or opens new groups.
  virtual IngestAssignment AssignOrSplit(const Corpus& corpus,
                                         uint32_t doc_index) = 0;

  /// Total groups currently tracked (base + opened).
  virtual size_t num_groups() const = 0;

  virtual std::string name() const = 0;

  /// Deep copy including all incremental state.
  virtual std::unique_ptr<IncrementalGrouper> Clone() const = 0;
};

/// Content-based incremental grouping: k-means over base signatures, then
/// assign-to-nearest-centroid (ties toward the lower group id) with a
/// running-mean centroid update per arrival. A group whose member count
/// reaches `split_threshold` is split by a deterministic 2-means over its
/// member signatures: the smaller half becomes a new group (a new arm),
/// both halves get their recomputed centroids. Signatures of arrivals use
/// the base-frozen IDF table, so geometry never depends on unseen data.
struct IncrementalKMeansOptions {
  size_t num_groups = 32;
  uint64_t seed = 7;
  SignatureConfig signature;
  /// Member count that triggers a split (2 shards keeps chains short).
  size_t split_threshold = 2 * GroupedCorpus::kShardCapacity;
  /// Hard cap on total groups; at the cap assignment continues, splits
  /// stop.
  size_t max_groups = 512;
  size_t split_kmeans_iterations = 8;
};

class IncrementalKMeansGrouper : public IncrementalGrouper {
 public:
  explicit IncrementalKMeansGrouper(IncrementalKMeansOptions options = {});

  GroupingResult GroupBase(const Corpus& corpus, size_t base_size) override;
  IngestAssignment AssignOrSplit(const Corpus& corpus,
                                 uint32_t doc_index) override;
  size_t num_groups() const override { return centroids_.size(); }
  std::string name() const override;
  std::unique_ptr<IncrementalGrouper> Clone() const override;

  /// Splits performed so far (testing accessor).
  size_t num_splits() const { return num_splits_; }

 private:
  IncrementalKMeansOptions options_;
  std::vector<double> idf_;  // frozen at GroupBase
  std::vector<std::vector<double>> centroids_;
  /// Current members per group (doc ids + their signatures, parallel
  /// vectors) — the split working set. A split moves the smaller half's
  /// entries to the new group's vectors.
  std::vector<std::vector<uint32_t>> member_docs_;
  std::vector<std::vector<std::vector<double>>> member_sigs_;
  /// Member count at which group g next attempts a split (re-armed after
  /// every attempt so a degenerate group cannot retry per arrival).
  std::vector<size_t> next_split_at_;
  size_t num_splits_ = 0;
  bool base_built_ = false;
};

/// Metadata (domain) incremental grouping: first-seen domains open groups
/// up to max_groups, later domains fold in by hash. A never-seen domain
/// arriving mid-run below the cap opens a brand-new group — the "new
/// tenant shows up" case, an arm born with no history at all.
struct IncrementalMetadataOptions {
  size_t max_groups = 64;
};

class IncrementalMetadataGrouper : public IncrementalGrouper {
 public:
  explicit IncrementalMetadataGrouper(IncrementalMetadataOptions options = {});

  GroupingResult GroupBase(const Corpus& corpus, size_t base_size) override;
  IngestAssignment AssignOrSplit(const Corpus& corpus,
                                 uint32_t doc_index) override;
  size_t num_groups() const override { return num_groups_; }
  std::string name() const override;
  std::unique_ptr<IncrementalGrouper> Clone() const override;

 private:
  size_t GroupForDomain(uint32_t domain, std::vector<NewGroupSeed>* opened);

  IncrementalMetadataOptions options_;
  /// domain id -> group id; -1 unseen. Grown on demand.
  std::vector<int32_t> domain_to_group_;
  size_t num_groups_ = 0;
  bool base_built_ = false;
};

/// Token (inverted-index) incremental grouping: the DF-band token table is
/// selected over the base and frozen; arrivals join every group whose
/// token they mention (first-mention order), or the catch-all. Unlike the
/// offline TokenGrouper, the catch-all group always exists — a streamed
/// document with no indexed token must have somewhere to land — so this
/// grouper is append-only: groups never split and never appear mid-run.
class IncrementalTokenGrouper : public IncrementalGrouper {
 public:
  explicit IncrementalTokenGrouper(TokenGrouperOptions options = {});

  GroupingResult GroupBase(const Corpus& corpus, size_t base_size) override;
  IngestAssignment AssignOrSplit(const Corpus& corpus,
                                 uint32_t doc_index) override;
  size_t num_groups() const override { return num_token_groups_ + 1; }
  std::string name() const override { return "itoken"; }
  std::unique_ptr<IncrementalGrouper> Clone() const override;

 private:
  TokenGrouperOptions options_;
  /// token id -> group id; -1 unindexed. Frozen at GroupBase.
  std::vector<int32_t> token_to_group_;
  size_t num_token_groups_ = 0;  // catch-all is group num_token_groups_
  bool base_built_ = false;
};

}  // namespace zombie

#endif  // ZOMBIE_INDEX_INCREMENTAL_GROUPER_H_
