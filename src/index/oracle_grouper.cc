#include "index/oracle_grouper.h"

#include <algorithm>
#include <vector>

#include "util/clock.h"

namespace zombie {

OracleGrouper::OracleGrouper(OracleMode mode) : mode_(mode) {}

GroupingResult OracleGrouper::Group(const Corpus& corpus) {
  Stopwatch watch;
  GroupingResult result;
  result.method = name();
  if (corpus.empty()) {
    result.build_wall_micros = watch.ElapsedMicros();
    return result;
  }
  if (mode_ == OracleMode::kLabel) {
    result.groups.resize(2);
    for (size_t i = 0; i < corpus.size(); ++i) {
      size_t g = corpus.doc(i).label == 1 ? 1 : 0;
      result.groups[g].push_back(static_cast<uint32_t>(i));
    }
  } else {
    uint32_t max_topic = 0;
    for (const auto& d : corpus.documents()) {
      max_topic = std::max(max_topic, d.topic);
    }
    result.groups.resize(max_topic + 1);
    for (size_t i = 0; i < corpus.size(); ++i) {
      result.groups[corpus.doc(i).topic].push_back(static_cast<uint32_t>(i));
    }
  }
  result.groups.erase(
      std::remove_if(result.groups.begin(), result.groups.end(),
                     [](const auto& g) { return g.empty(); }),
      result.groups.end());
  result.build_virtual_micros = 0;  // an oracle is free, and fictional
  result.build_wall_micros = watch.ElapsedMicros();
  return result;
}

std::string OracleGrouper::name() const {
  return mode_ == OracleMode::kLabel ? "oracle-label" : "oracle-topic";
}

}  // namespace zombie
