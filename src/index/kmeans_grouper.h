#ifndef ZOMBIE_INDEX_KMEANS_GROUPER_H_
#define ZOMBIE_INDEX_KMEANS_GROUPER_H_

#include <cstdint>
#include <string>

#include "index/grouper.h"
#include "index/kmeans.h"
#include "index/signature.h"

namespace zombie {

/// Content-based index groups: cheap signatures clustered with k-means.
/// The paper's primary grouping — topical clusters concentrate useful items
/// without looking at labels or running the (expensive) feature code.
class KMeansGrouper : public Grouper {
 public:
  KMeansGrouper(size_t num_groups, uint64_t seed,
                SignatureConfig signature_config = {});

  GroupingResult Group(const Corpus& corpus) override;
  std::string name() const override;

 private:
  size_t num_groups_;
  uint64_t seed_;
  SignatureConfig signature_config_;
};

}  // namespace zombie

#endif  // ZOMBIE_INDEX_KMEANS_GROUPER_H_
