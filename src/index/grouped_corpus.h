#ifndef ZOMBIE_INDEX_GROUPED_CORPUS_H_
#define ZOMBIE_INDEX_GROUPED_CORPUS_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "data/corpus.h"
#include "index/grouper.h"

namespace zombie {

/// The online view of an indexed corpus: per-group cursors over (shuffled)
/// item lists with a global processed set, so that overlapping groups never
/// hand the engine the same item twice.
///
/// The engine asks a bandit policy for a group, then asks this class for
/// the next unprocessed item of that group. Holdout items are pre-marked
/// as processed so evaluation data never leaks into training.
///
/// Storage is an appendable shard arena (the CSR/arena idiom of the sparse
/// Dataset): every group is a chain of fixed-capacity shards carved out of
/// one flat doc-id arena, so growing a group mid-run — streaming ingestion
/// — is an O(1) append that never reallocates per-group vectors or
/// invalidates another group's layout. Iteration order is the shard-chain
/// order, which is exactly the order items were inserted; for the frozen
/// base grouping that is the same (optionally shuffled) order the
/// pre-arena implementation produced, byte for byte.
class GroupedCorpus {
 public:
  /// Documents per shard. Also the natural granularity for split
  /// thresholds: an incremental grouper that splits a group at a small
  /// multiple of this keeps chains short.
  static constexpr size_t kShardCapacity = 64;

  /// A borrowed, contiguous view of one shard's doc ids (test/debug
  /// surface). Invalidated by any append to the GroupedCorpus.
  struct ShardView {
    const uint32_t* docs = nullptr;
    size_t size = 0;
  };

  /// Takes a non-owning pointer to the corpus (must outlive this object)
  /// and the grouping. Item order within each group is shuffled with
  /// `seed` so corpus construction order carries no signal; pass
  /// shuffle = false to preserve group order (the sequential-scan
  /// baseline).
  GroupedCorpus(const Corpus* corpus, GroupingResult grouping, uint64_t seed,
                bool shuffle = true);

  /// Streaming variant: the grouping covers only the offline base
  /// [0, base_size) and is validated against that prefix; documents
  /// [base_size, corpus.size()) enter later via AppendDocument/AddGroup.
  /// With base_size == corpus.size() this is exactly the offline
  /// constructor.
  GroupedCorpus(const Corpus* corpus, GroupingResult grouping, uint64_t seed,
                bool shuffle, size_t base_size);

  size_t num_groups() const { return groups_.size(); }
  /// Total items ever inserted into group g (base + appended; items shared
  /// with other groups count here regardless of who consumed them).
  size_t group_size(size_t g) const;

  /// Pops the next unprocessed document index from group g, marking it
  /// processed globally. Returns nullopt when the group is exhausted
  /// (possibly because overlapping groups consumed its items). An
  /// exhausted group is not dead under streaming: a later append makes it
  /// produce again.
  std::optional<uint32_t> NextFromGroup(size_t g);

  /// True when group g has no unprocessed items left. May do cursor work
  /// (skipping already-processed entries) but never consumes an item.
  bool GroupExhausted(size_t g);

  /// Fills `out` with up to `max_items` upcoming unprocessed document
  /// indices of group g, in the order NextFromGroup would pop them.
  /// Purely observational: no cursor movement, no processed marks — the
  /// speculation hook for the prefetcher. Const, so safe to call from the
  /// engine thread while prefetch workers run (they never touch this
  /// object, only the ids copied into `out`).
  void PeekUnprocessed(size_t g, size_t max_items,
                       std::vector<uint32_t>* out) const;

  /// True when no group can produce another item.
  bool AllExhausted();

  /// Marks a document processed without attributing it to a group (e.g.
  /// holdout sampling). Idempotent.
  void MarkProcessed(uint32_t doc_index);

  bool IsProcessed(uint32_t doc_index) const;

  /// Number of distinct documents marked processed so far.
  size_t num_processed() const { return num_processed_; }

  /// Restores the all-unprocessed state (cursors rewound; insertion order
  /// — including any streamed appends — preserved so repeated runs over
  /// one index are comparable).
  void Reset();

  // --- Streaming ingestion (engine-thread only, like every mutator). ----

  /// Appends an arrived document to each listed group, in order. Groups
  /// must exist; the document must be a valid corpus index. The same
  /// document may live in several groups (token-style overlap and k-means
  /// splits both rely on this) — the global processed set guarantees it
  /// trains at most once.
  void AppendDocument(uint32_t doc_index, const std::vector<size_t>& groups);

  /// Opens a new group (a new bandit arm) seeded with `members` in the
  /// given order (possibly empty); returns its group index. Members may
  /// duplicate documents already present in other groups (a split copies
  /// rather than moves — append-only keeps every existing cursor valid,
  /// and the processed set already dedups consumption).
  size_t AddGroup(const std::vector<uint32_t>& members);

  /// Number of shards in group g's chain (0 for an empty group).
  size_t num_shards(size_t g) const;

  /// Borrowed view of the `ordinal`-th shard of group g's chain.
  ShardView shard(size_t g, size_t ordinal) const;

  const Corpus& corpus() const { return *corpus_; }
  /// The frozen base grouping (streamed appends are not reflected here).
  const GroupingResult& grouping() const { return grouping_; }
  /// Size of the offline base prefix this index was built over.
  size_t base_size() const { return base_size_; }

 private:
  struct GroupIndex {
    int32_t head = -1;  // first shard id, -1 when empty
    int32_t tail = -1;  // last shard id (append target)
    size_t size = 0;    // total items inserted
  };
  struct Cursor {
    int32_t shard = -1;  // -1: (re)start from the group head
    uint32_t offset = 0;
  };

  int32_t AllocateShard();
  void AppendToGroup(size_t g, uint32_t doc_index);

  const Corpus* corpus_;
  GroupingResult grouping_;
  size_t base_size_;
  /// Flat shard arena: shard s owns slots [s*kShardCapacity,
  /// (s+1)*kShardCapacity); shard_len_[s] of them are filled.
  std::vector<uint32_t> arena_;
  std::vector<uint32_t> shard_len_;
  std::vector<int32_t> shard_next_;
  std::vector<GroupIndex> groups_;
  std::vector<Cursor> cursors_;
  std::vector<uint8_t> processed_;
  size_t num_processed_ = 0;
};

}  // namespace zombie

#endif  // ZOMBIE_INDEX_GROUPED_CORPUS_H_
