#ifndef ZOMBIE_INDEX_GROUPED_CORPUS_H_
#define ZOMBIE_INDEX_GROUPED_CORPUS_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "data/corpus.h"
#include "index/grouper.h"

namespace zombie {

/// The online view of an indexed corpus: per-group cursors over (shuffled)
/// item lists with a global processed set, so that overlapping groups never
/// hand the engine the same item twice.
///
/// The engine asks a bandit policy for a group, then asks this class for
/// the next unprocessed item of that group. Holdout items are pre-marked
/// as processed so evaluation data never leaks into training.
class GroupedCorpus {
 public:
  /// Takes a non-owning pointer to the corpus (must outlive this object)
  /// and the grouping. Item order within each group is shuffled with
  /// `seed` so corpus construction order carries no signal; pass
  /// shuffle = false to preserve group order (the sequential-scan
  /// baseline).
  GroupedCorpus(const Corpus* corpus, GroupingResult grouping, uint64_t seed,
                bool shuffle = true);

  size_t num_groups() const { return groups_.size(); }
  size_t group_size(size_t g) const;

  /// Pops the next unprocessed document index from group g, marking it
  /// processed globally. Returns nullopt when the group is exhausted
  /// (possibly because overlapping groups consumed its items).
  std::optional<uint32_t> NextFromGroup(size_t g);

  /// True when group g has no unprocessed items left. May do cursor work
  /// (skipping already-processed entries) but never consumes an item.
  bool GroupExhausted(size_t g);

  /// Fills `out` with up to `max_items` upcoming unprocessed document
  /// indices of group g, in the order NextFromGroup would pop them.
  /// Purely observational: no cursor movement, no processed marks — the
  /// speculation hook for the prefetcher. Const, so safe to call from the
  /// engine thread while prefetch workers run (they never touch this
  /// object, only the ids copied into `out`).
  void PeekUnprocessed(size_t g, size_t max_items,
                       std::vector<uint32_t>* out) const;

  /// True when no group can produce another item.
  bool AllExhausted();

  /// Marks a document processed without attributing it to a group (e.g.
  /// holdout sampling). Idempotent.
  void MarkProcessed(uint32_t doc_index);

  bool IsProcessed(uint32_t doc_index) const;

  /// Number of distinct documents marked processed so far.
  size_t num_processed() const { return num_processed_; }

  /// Restores the all-unprocessed state (cursors rewound; shuffle order
  /// preserved so repeated runs over one index are comparable).
  void Reset();

  const Corpus& corpus() const { return *corpus_; }
  const GroupingResult& grouping() const { return grouping_; }

 private:
  const Corpus* corpus_;
  GroupingResult grouping_;
  std::vector<std::vector<uint32_t>> groups_;  // shuffled copies
  std::vector<size_t> cursors_;
  std::vector<uint8_t> processed_;
  size_t num_processed_ = 0;
};

}  // namespace zombie

#endif  // ZOMBIE_INDEX_GROUPED_CORPUS_H_
