#ifndef ZOMBIE_INDEX_TOKEN_GROUPER_H_
#define ZOMBIE_INDEX_TOKEN_GROUPER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "index/grouper.h"

namespace zombie {

/// Inverted-index grouping: one group per selected vocabulary token, each
/// containing the documents mentioning it, plus a catch-all group for
/// uncovered documents. Groups overlap (a document mentioning two selected
/// tokens is in both); the GroupedCorpus dedups at selection time.
///
/// Token selection is label-free: mid-document-frequency tokens (too rare
/// carries no mass, too frequent carries no signal), ranked rarest-first
/// within the band. For mention-style tasks (T2) the entity tokens land in
/// this band, so one arm nearly isolates the positives.
struct TokenGrouperOptions {
  /// Maximum number of token groups (excluding the catch-all).
  size_t max_groups = 63;
  /// Document-frequency band, as fractions of corpus size.
  double min_df_fraction = 0.002;
  double max_df_fraction = 0.20;
  /// Vocabulary terms the engineer seeds the index with (task hints, e.g.
  /// entity names). Resolved against the corpus vocabulary at Group time;
  /// unknown terms are ignored. Seeded terms always get a group and do not
  /// count against max_groups' DF-band selection order.
  std::vector<std::string> seed_terms;
};

class TokenGrouper : public Grouper {
 public:
  explicit TokenGrouper(TokenGrouperOptions options = {});

  GroupingResult Group(const Corpus& corpus) override;
  std::string name() const override { return "token"; }

  const TokenGrouperOptions& options() const { return options_; }

 private:
  TokenGrouperOptions options_;
};

}  // namespace zombie

#endif  // ZOMBIE_INDEX_TOKEN_GROUPER_H_
