#include "obs/obs.h"

namespace zombie {

ObsContext::ObsContext(ObsOptions options) : options_(options) {
  if (options_.metrics) metrics_ = std::make_unique<MetricsRegistry>();
  if (options_.trace) trace_ = std::make_unique<TraceRecorder>();
  if (options_.decision_log) decisions_ = std::make_unique<DecisionLog>();
}

ThreadPoolStatsHooks MetricsPoolHooks(MetricsRegistry* metrics) {
  ThreadPoolStatsHooks hooks;
  if (metrics == nullptr) return hooks;
  // Resolve metric handles once; the hooks then touch only atomics.
  Gauge* depth = metrics->GetGauge("threadpool.queue_depth");
  Histogram* wait = metrics->GetHistogram("threadpool.queue_wait_us");
  Histogram* task = metrics->GetHistogram("threadpool.task_us");
  hooks.on_submit = [depth](size_t queue_depth) {
    depth->Set(static_cast<double>(queue_depth));
  };
  hooks.on_dequeue = [wait](int64_t queue_wait_micros) {
    wait->Observe(static_cast<double>(queue_wait_micros));
  };
  hooks.on_complete = [task](int64_t task_micros) {
    task->Observe(static_cast<double>(task_micros));
  };
  return hooks;
}

}  // namespace zombie
