#include "obs/json_util.h"

#include <cmath>
#include <cstdio>

#include "util/string_util.h"

namespace zombie {
namespace obs_internal {

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendJsonNumber(std::string* out, double v) {
  if (std::isnan(v)) {
    *out += "0";
    return;
  }
  if (std::isinf(v)) {
    *out += v > 0 ? "1e308" : "-1e308";
    return;
  }
  // %.17g round-trips every double; trim to a plain integer form when the
  // value is integral and small enough to matter for readability.
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 1e15) {
    *out += StrFormat("%lld", static_cast<long long>(v));
    return;
  }
  *out += StrFormat("%.17g", v);
}

Status WriteFile(const std::string& path, const std::string& data) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open for write: " + path);
  }
  size_t written = std::fwrite(data.data(), 1, data.size(), f);
  int close_err = std::fclose(f);
  if (written != data.size() || close_err != 0) {
    return Status::IOError("short write: " + path);
  }
  return Status::OK();
}

}  // namespace obs_internal
}  // namespace zombie
