#include "obs/trace.h"

#include <thread>
#include <utility>

#include "obs/json_util.h"
#include "util/string_util.h"

namespace zombie {

TraceRecorder::TraceRecorder(std::function<int64_t()> now_fn)
    : now_fn_(std::move(now_fn)) {}

int64_t TraceRecorder::NowMicros() const {
  return now_fn_ ? now_fn_() : epoch_.ElapsedMicros();
}

uint32_t TraceRecorder::CurrentTid() const {
  // Dense ids in first-record order keep the JSON stable for
  // single-threaded runs and readable for multi-threaded ones. Caller
  // holds mu_.
  uint64_t h = std::hash<std::thread::id>{}(std::this_thread::get_id());
  for (const auto& [hash, id] : tids_) {
    if (hash == h) return id;
  }
  uint32_t id = static_cast<uint32_t>(tids_.size()) + 1;
  tids_.emplace_back(h, id);
  return id;
}

void TraceRecorder::Append(const char* name, const char* category,
                           int64_t ts_micros, int64_t dur_micros) {
  MutexLock lock(&mu_);
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.ts_micros = ts_micros;
  e.dur_micros = dur_micros;
  e.tid = CurrentTid();
  events_.push_back(std::move(e));
}

size_t TraceRecorder::size() const {
  MutexLock lock(&mu_);
  return events_.size();
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  MutexLock lock(&mu_);
  return events_;
}

std::string TraceRecorder::ToJson() const {
  using obs_internal::JsonEscape;
  std::vector<TraceEvent> events = Events();
  std::string json = "{\"traceEvents\": [\n";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    json += StrFormat(
        "  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
        "\"ts\": %lld, \"dur\": %lld, \"pid\": 1, \"tid\": %u}%s\n",
        JsonEscape(e.name).c_str(), JsonEscape(e.category).c_str(),
        static_cast<long long>(e.ts_micros),
        static_cast<long long>(e.dur_micros), e.tid,
        i + 1 < events.size() ? "," : "");
  }
  json += "], \"displayTimeUnit\": \"ms\"}\n";
  return json;
}

Status TraceRecorder::WriteJson(const std::string& path) const {
  return obs_internal::WriteFile(path, ToJson());
}

}  // namespace zombie
