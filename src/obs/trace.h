#ifndef ZOMBIE_OBS_TRACE_H_
#define ZOMBIE_OBS_TRACE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/clock.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace zombie {

/// One complete ("ph":"X") event in the Chrome trace-event format.
struct TraceEvent {
  std::string name;
  std::string category;
  int64_t ts_micros = 0;   // start, relative to the recorder's epoch
  int64_t dur_micros = 0;  // duration
  uint32_t tid = 0;        // recorder-assigned thread id, dense from 1
};

/// Thread-safe collector of duration events, exported as JSON that loads
/// directly in Perfetto / chrome://tracing ("traceEvents" array of "X"
/// phase events).
///
/// Time source: by default a wall epoch anchored at construction
/// (util/clock Stopwatch). Tests inject a deterministic `now_fn` so span
/// timestamps are reproducible. Thread ids are assigned densely in the
/// order threads first record, so single-threaded traces are fully
/// deterministic modulo timestamps.
class TraceRecorder {
 public:
  /// `now_fn` returns microseconds since an arbitrary epoch; when empty,
  /// wall time since recorder construction is used.
  explicit TraceRecorder(std::function<int64_t()> now_fn = {});

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Current time in microseconds from the recorder's time source.
  int64_t NowMicros() const;

  /// Appends a complete event (thread-safe).
  void Append(const char* name, const char* category, int64_t ts_micros,
              int64_t dur_micros) ZOMBIE_EXCLUDES(mu_);

  size_t size() const ZOMBIE_EXCLUDES(mu_);
  std::vector<TraceEvent> Events() const ZOMBIE_EXCLUDES(mu_);

  /// {"traceEvents": [...], "displayTimeUnit": "ms"} — the schema both
  /// Perfetto and chrome://tracing accept.
  std::string ToJson() const;

  [[nodiscard]] Status WriteJson(const std::string& path) const;

 private:
  uint32_t CurrentTid() const ZOMBIE_REQUIRES(mu_);

  std::function<int64_t()> now_fn_;
  Stopwatch epoch_;
  mutable Mutex mu_;
  std::vector<TraceEvent> events_ ZOMBIE_GUARDED_BY(mu_);
  /// hash -> dense id
  mutable std::vector<std::pair<uint64_t, uint32_t>> tids_
      ZOMBIE_GUARDED_BY(mu_);
};

/// RAII span: records [construction, destruction) as one trace event.
/// A null recorder makes every operation a no-op — the disabled path does
/// not allocate, lock, or read the clock. `name` and `category` must
/// outlive the span (pass string literals, or keep the owning std::string
/// alive across the span's scope).
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* recorder, const char* name,
            const char* category = "zombie")
      : recorder_(recorder), name_(name), category_(category) {
    if (recorder_ != nullptr) start_ = recorder_->NowMicros();
  }

  ~TraceSpan() {
    if (recorder_ != nullptr) {
      recorder_->Append(name_, category_, start_,
                        recorder_->NowMicros() - start_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceRecorder* recorder_;
  const char* name_;
  const char* category_;
  int64_t start_ = 0;
};

}  // namespace zombie

#endif  // ZOMBIE_OBS_TRACE_H_
