#ifndef ZOMBIE_OBS_METRICS_H_
#define ZOMBIE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/clock.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace zombie {

/// Monotonically increasing event count. All operations are lock-free and
/// safe to call from any thread.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, cache entries).
/// Thread-safe; concurrent Set calls race benignly (one of them wins).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Read-only view of a histogram's state at one instant.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// Fixed-bucket histogram. Bucket upper bounds are set at construction and
/// never change, so Observe only touches atomics — safe and cheap from any
/// thread. Percentiles are estimated by linear interpolation inside the
/// bucket that contains the requested rank (exact at bucket boundaries;
/// the default exponential bounds keep the relative error small).
class Histogram {
 public:
  /// `bounds` are strictly increasing bucket upper bounds; values above the
  /// last bound land in an implicit overflow bucket. Empty bounds select
  /// DefaultLatencyBounds().
  explicit Histogram(std::vector<double> bounds = {});

  void Observe(double value);

  HistogramSnapshot Snapshot() const;

  /// Exponential bounds from 1 to ~1e7 (microsecond latencies: 1us..10s).
  static std::vector<double> DefaultLatencyBounds();

  const std::vector<double>& bounds() const { return bounds_; }

  /// Raw count of bucket i, i in [0, bounds().size()] (testing accessor).
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  /// buckets_[i] counts values in [bounds_[i-1], bounds_[i]) — bucket 0
  /// takes everything below bounds_[0]; the extra last bucket is overflow.
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};

  double PercentileLocked(double q, const std::vector<uint64_t>& buckets,
                          uint64_t total, double min_v, double max_v) const;
};

/// RAII wall-latency sample: observes the scope's duration (microseconds)
/// into `hist` at destruction. A null histogram disables the timer
/// completely — no allocation and no clock read, which is what keeps
/// disabled-observability hot loops at their uninstrumented cost.
class ScopedHistogramTimer {
 public:
  explicit ScopedHistogramTimer(Histogram* hist) : hist_(hist) {
    if (hist_ != nullptr) watch_.emplace();
  }

  ~ScopedHistogramTimer() {
    if (watch_.has_value()) {
      hist_->Observe(static_cast<double>(watch_->ElapsedMicros()));
    }
  }

  ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
  ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;

 private:
  Histogram* hist_;
  std::optional<Stopwatch> watch_;
};

/// One registry snapshot: every metric's name and current value, in name
/// order (deterministic iteration for serialization and tests).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/// Thread-safe name -> metric registry. Get* returns a stable pointer,
/// creating the metric on first use; the pointer stays valid for the
/// registry's lifetime, so hot paths resolve their metrics once and then
/// operate lock-free. Name convention: "layer.metric" with '.' separators
/// ("engine.pulls", "bandit.select_us.egreedy(0.10)").
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name) ZOMBIE_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name) ZOMBIE_EXCLUDES(mu_);
  /// `bounds` applies only when the histogram is created by this call;
  /// later lookups with different bounds return the existing histogram.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds = {})
      ZOMBIE_EXCLUDES(mu_);

  MetricsSnapshot Snapshot() const ZOMBIE_EXCLUDES(mu_);

  /// Serializes a Snapshot() as a stable, pretty-printed JSON object:
  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count,
  /// sum, min, max, p50, p95, p99}, ...}}.
  std::string ToJson() const;

  [[nodiscard]] Status WriteJson(const std::string& path) const;

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      ZOMBIE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ ZOMBIE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      ZOMBIE_GUARDED_BY(mu_);
};

}  // namespace zombie

#endif  // ZOMBIE_OBS_METRICS_H_
