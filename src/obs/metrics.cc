#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "obs/json_util.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace zombie {

namespace {

/// Lock-free accumulate for atomic<double> (fetch_add on floating atomics
/// is C++20 but not universally lowered well; CAS is portable and the
/// contention here is negligible).
void AtomicAdd(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (v < cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (v > cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::vector<double> Histogram::DefaultLatencyBounds() {
  // 1us .. 10s in quarter-decade steps: tight enough for p99 interpolation
  // across the latencies this library sees, small enough to snapshot fast.
  std::vector<double> bounds;
  for (double b = 1.0; b <= 1e7; b *= std::pow(10.0, 0.25)) {
    bounds.push_back(b);
  }
  return bounds;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(bounds.empty() ? DefaultLatencyBounds() : std::move(bounds)) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    ZCHECK_LT(bounds_[i - 1], bounds_[i]) << "bounds must strictly increase";
  }
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

void Histogram::Observe(double value) {
  size_t idx = static_cast<size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
}

double Histogram::PercentileLocked(double q,
                                   const std::vector<uint64_t>& buckets,
                                   uint64_t total, double min_v,
                                   double max_v) const {
  if (total == 0) return 0.0;
  double target = q * static_cast<double>(total);
  uint64_t cum = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    double prev_cum = static_cast<double>(cum);
    cum += buckets[i];
    if (static_cast<double>(cum) < target) continue;
    // Interpolate inside bucket i: [lower, upper) holds the target rank.
    double lower = i == 0 ? std::min(min_v, bounds_.front()) : bounds_[i - 1];
    double upper = i < bounds_.size() ? bounds_[i] : max_v;
    lower = std::max(lower, min_v);
    upper = std::min(std::max(upper, lower), max_v);
    double frac = (target - prev_cum) / static_cast<double>(buckets[i]);
    return std::clamp(lower + frac * (upper - lower), min_v, max_v);
  }
  return max_v;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  // Relaxed loads: a snapshot taken concurrently with Observe may be off
  // by in-flight observations — acceptable for reporting.
  std::vector<uint64_t> buckets(bounds_.size() + 1);
  uint64_t total = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    total += buckets[i];
  }
  s.count = total;
  if (total == 0) return s;
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  s.p50 = PercentileLocked(0.50, buckets, total, s.min, s.max);
  s.p95 = PercentileLocked(0.95, buckets, total, s.min, s.max);
  s.p99 = PercentileLocked(0.99, buckets, total, s.min, s.max);
  return s;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  MutexLock lock(&mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(&mu_);
  MetricsSnapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    s.counters.emplace_back(name, c->value());
  }
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    s.gauges.emplace_back(name, g->value());
  }
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    s.histograms.emplace_back(name, h->Snapshot());
  }
  return s;
}

std::string MetricsRegistry::ToJson() const {
  using obs_internal::AppendJsonNumber;
  using obs_internal::JsonEscape;
  MetricsSnapshot s = Snapshot();
  std::string json = "{\n  \"counters\": {";
  for (size_t i = 0; i < s.counters.size(); ++i) {
    json += StrFormat("%s\n    \"%s\": %llu", i == 0 ? "" : ",",
                      JsonEscape(s.counters[i].first).c_str(),
                      static_cast<unsigned long long>(s.counters[i].second));
  }
  json += s.counters.empty() ? "},\n" : "\n  },\n";
  json += "  \"gauges\": {";
  for (size_t i = 0; i < s.gauges.size(); ++i) {
    json += StrFormat("%s\n    \"%s\": ", i == 0 ? "" : ",",
                      JsonEscape(s.gauges[i].first).c_str());
    AppendJsonNumber(&json, s.gauges[i].second);
  }
  json += s.gauges.empty() ? "},\n" : "\n  },\n";
  json += "  \"histograms\": {";
  for (size_t i = 0; i < s.histograms.size(); ++i) {
    const HistogramSnapshot& h = s.histograms[i].second;
    json += StrFormat("%s\n    \"%s\": {\"count\": %llu, \"sum\": ",
                      i == 0 ? "" : ",",
                      JsonEscape(s.histograms[i].first).c_str(),
                      static_cast<unsigned long long>(h.count));
    AppendJsonNumber(&json, h.sum);
    for (const auto& [key, value] :
         {std::pair<const char*, double>{"min", h.min},
          {"max", h.max},
          {"p50", h.p50},
          {"p95", h.p95},
          {"p99", h.p99}}) {
      json += StrFormat(", \"%s\": ", key);
      AppendJsonNumber(&json, value);
    }
    json += "}";
  }
  json += s.histograms.empty() ? "}\n" : "\n  }\n";
  json += "}\n";
  return json;
}

Status MetricsRegistry::WriteJson(const std::string& path) const {
  return obs_internal::WriteFile(path, ToJson());
}

}  // namespace zombie
