#ifndef ZOMBIE_OBS_JSON_UTIL_H_
#define ZOMBIE_OBS_JSON_UTIL_H_

#include <string>

#include "util/status.h"

namespace zombie {
namespace obs_internal {

/// Escapes `in` for use inside a JSON string literal (quotes not included).
std::string JsonEscape(const std::string& in);

/// Appends a JSON-legal number: full round-trip precision for finite
/// values; non-finite values (which JSON cannot represent) are clamped to
/// +/-1e308 and NaN becomes 0. Metric and score values are informational,
/// so a clamped extreme beats an unparseable file.
void AppendJsonNumber(std::string* out, double v);

/// Writes `data` to `path` atomically enough for CI artifacts (plain
/// truncate-and-write); returns IOError on failure.
[[nodiscard]] Status WriteFile(const std::string& path,
                               const std::string& data);

}  // namespace obs_internal
}  // namespace zombie

#endif  // ZOMBIE_OBS_JSON_UTIL_H_
