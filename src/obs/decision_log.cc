#include "obs/decision_log.h"

#include <utility>

#include "obs/json_util.h"
#include "util/string_util.h"

namespace zombie {

const char* CacheOutcomeName(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kDisabled:
      return "off";
    case CacheOutcome::kMiss:
      return "miss";
    case CacheOutcome::kHit:
      return "hit";
  }
  return "?";
}

void DecisionLog::AppendRun(const std::string& run_label,
                            std::vector<DecisionRecord> records) {
  MutexLock lock(&mu_);
  std::vector<DecisionRecord>& dest = runs_[run_label];
  if (dest.empty()) {
    dest = std::move(records);
  } else {
    dest.insert(dest.end(), std::make_move_iterator(records.begin()),
                std::make_move_iterator(records.end()));
  }
}

void DecisionLog::AppendPruneEvents(const std::string& run_label,
                                    std::vector<PruneEvent> events) {
  if (events.empty()) return;
  MutexLock lock(&mu_);
  std::vector<PruneEvent>& dest = prunes_[run_label];
  if (dest.empty()) {
    dest = std::move(events);
  } else {
    dest.insert(dest.end(), events.begin(), events.end());
  }
}

void DecisionLog::AppendIngestEvents(const std::string& run_label,
                                     std::vector<IngestEvent> events) {
  if (events.empty()) return;
  MutexLock lock(&mu_);
  std::vector<IngestEvent>& dest = ingests_[run_label];
  if (dest.empty()) {
    dest = std::move(events);
  } else {
    dest.insert(dest.end(), events.begin(), events.end());
  }
}

size_t DecisionLog::num_runs() const {
  MutexLock lock(&mu_);
  return runs_.size();
}

size_t DecisionLog::num_records() const {
  MutexLock lock(&mu_);
  size_t n = 0;
  for (const auto& [label, records] : runs_) n += records.size();
  return n;
}

std::vector<std::string> DecisionLog::Labels() const {
  MutexLock lock(&mu_);
  std::vector<std::string> labels;
  labels.reserve(runs_.size());
  for (const auto& [label, records] : runs_) labels.push_back(label);
  return labels;
}

std::vector<DecisionRecord> DecisionLog::Records(
    const std::string& run_label) const {
  MutexLock lock(&mu_);
  auto it = runs_.find(run_label);
  return it == runs_.end() ? std::vector<DecisionRecord>() : it->second;
}

size_t DecisionLog::num_prune_events() const {
  MutexLock lock(&mu_);
  size_t n = 0;
  for (const auto& [label, events] : prunes_) n += events.size();
  return n;
}

std::vector<PruneEvent> DecisionLog::PruneEvents(
    const std::string& run_label) const {
  MutexLock lock(&mu_);
  auto it = prunes_.find(run_label);
  return it == prunes_.end() ? std::vector<PruneEvent>() : it->second;
}

size_t DecisionLog::num_ingest_events() const {
  MutexLock lock(&mu_);
  size_t n = 0;
  for (const auto& [label, events] : ingests_) n += events.size();
  return n;
}

std::vector<IngestEvent> DecisionLog::IngestEvents(
    const std::string& run_label) const {
  MutexLock lock(&mu_);
  auto it = ingests_.find(run_label);
  return it == ingests_.end() ? std::vector<IngestEvent>() : it->second;
}

std::string DecisionLog::ToJsonl() const {
  using obs_internal::AppendJsonNumber;
  using obs_internal::JsonEscape;
  MutexLock lock(&mu_);
  std::string out;
  for (const auto& [label, records] : runs_) {
    std::string escaped = JsonEscape(label);
    for (const DecisionRecord& r : records) {
      out += StrFormat(
          "{\"run\": \"%s\", \"iter\": %llu, \"arm\": %u, \"doc\": %u, "
          "\"reward\": ",
          escaped.c_str(), static_cast<unsigned long long>(r.iteration),
          r.arm, r.doc_id);
      AppendJsonNumber(&out, r.reward);
      out += StrFormat(
          ", \"cache\": \"%s\", \"cost_us\": %lld, \"virtual_us\": %lld, "
          "\"scores\": [",
          CacheOutcomeName(r.cache),
          static_cast<long long>(r.extraction_cost_micros),
          static_cast<long long>(r.virtual_micros));
      for (size_t i = 0; i < r.arm_scores.size(); ++i) {
        if (i > 0) out += ", ";
        AppendJsonNumber(&out, r.arm_scores[i]);
      }
      out += "]}\n";
    }
    // Prune freezes serialize after the run's pull records. Runs without
    // pruning have no prunes_ entry, so their bytes are exactly the
    // pre-pruning format.
    auto it = prunes_.find(label);
    if (it != prunes_.end()) {
      for (const PruneEvent& p : it->second) {
        out += StrFormat(
            "{\"run\": \"%s\", \"kind\": \"prune\", \"items\": %llu, "
            "\"virtual_us\": %lld, \"input_dim\": %llu, \"kept\": %llu, "
            "\"pruned\": %llu}\n",
            escaped.c_str(), static_cast<unsigned long long>(p.items),
            static_cast<long long>(p.virtual_micros),
            static_cast<unsigned long long>(p.input_dimension),
            static_cast<unsigned long long>(p.kept_features),
            static_cast<unsigned long long>(p.pruned_features));
      }
    }
    // Ingestion windows serialize last. Offline runs have no ingests_
    // entry, so their bytes are exactly the pre-streaming format.
    auto ing = ingests_.find(label);
    if (ing != ingests_.end()) {
      for (const IngestEvent& e : ing->second) {
        out += StrFormat(
            "{\"run\": \"%s\", \"kind\": \"ingest\", \"items\": %llu, "
            "\"virtual_us\": %lld, \"docs\": %llu, \"new_arms\": %llu, "
            "\"splits\": %llu, \"total_arms\": %llu}\n",
            escaped.c_str(), static_cast<unsigned long long>(e.items),
            static_cast<long long>(e.virtual_micros),
            static_cast<unsigned long long>(e.docs_added),
            static_cast<unsigned long long>(e.new_arms),
            static_cast<unsigned long long>(e.splits),
            static_cast<unsigned long long>(e.total_arms));
      }
    }
  }
  return out;
}

Status DecisionLog::WriteJsonl(const std::string& path) const {
  return obs_internal::WriteFile(path, ToJsonl());
}

}  // namespace zombie
