#ifndef ZOMBIE_OBS_DECISION_LOG_H_
#define ZOMBIE_OBS_DECISION_LOG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/thread_annotations.h"

namespace zombie {

/// What the feature-extraction memo did for one pull.
enum class CacheOutcome : int8_t {
  kDisabled = -1,  // no cache configured for the run
  kMiss = 0,
  kHit = 1,
};

const char* CacheOutcomeName(CacheOutcome outcome);

/// Everything the engine knew and decided at one bandit pull. Every field
/// is a deterministic function of (corpus, grouping, options.seed) — wall
/// time never appears here, so logs are byte-identical across repeat runs
/// and worker-thread counts (the property obs_decision_log_test pins).
struct DecisionRecord {
  uint64_t iteration = 0;  // 0-based pull index within the run
  uint32_t arm = 0;
  uint32_t doc_id = 0;
  double reward = 0.0;
  CacheOutcome cache = CacheOutcome::kDisabled;
  int64_t extraction_cost_micros = 0;  // the pull's virtual extraction charge
  int64_t virtual_micros = 0;          // virtual clock after the pull
  /// The policy's per-arm preference scores at selection time
  /// (BanditPolicy::ScoreArms): posterior means, UCB indices, or choice
  /// probabilities depending on the policy.
  std::vector<double> arm_scores;
};

/// One online-pruning freeze, recorded at the holdout-eval boundary where
/// the mask froze. Like DecisionRecord, every field is a deterministic
/// function of (corpus, grouping, options) — never of wall time — so logs
/// with pruning enabled stay byte-identical across thread counts and
/// cache/store modes. Runs with pruning disabled emit no prune lines, so
/// their serialized bytes are unchanged from before this record existed.
struct PruneEvent {
  uint64_t items = 0;          // engine item count at the freeze
  int64_t virtual_micros = 0;  // virtual clock at the freeze
  uint64_t input_dimension = 0;
  uint64_t kept_features = 0;
  uint64_t pruned_features = 0;
};

/// One streaming-ingestion window, recorded at the holdout-eval boundary
/// (or starvation fast-forward) where the engine consumed arrivals. Every
/// field is a deterministic function of (corpus, schedule, options) — the
/// virtual clock gates arrivals, never wall time — so streaming logs are
/// byte-identical across thread counts, cache/store modes, and SIMD
/// levels. Offline runs emit no ingest lines, so their serialized bytes
/// are unchanged from before this record existed.
struct IngestEvent {
  uint64_t items = 0;          // engine item count at the window
  int64_t virtual_micros = 0;  // stream-visible virtual time of the window
  uint64_t docs_added = 0;     // arrivals consumed in this window
  uint64_t new_arms = 0;       // groups opened (splits + new domains)
  uint64_t splits = 0;         // of new_arms, how many came from splits
  uint64_t total_arms = 0;     // arm count after the window
};

/// Structured per-pull log, grouped by run label. Thread-safe at run
/// granularity: each engine run collects its records locally and commits
/// them with one AppendRun; serialization iterates runs in label order, so
/// output bytes do not depend on commit order (and therefore not on the
/// experiment driver's thread count).
class DecisionLog {
 public:
  DecisionLog() = default;
  DecisionLog(const DecisionLog&) = delete;
  DecisionLog& operator=(const DecisionLog&) = delete;

  /// Commits one run's records under `run_label` (appends when the label
  /// already exists, e.g. re-running an identical spec).
  void AppendRun(const std::string& run_label,
                 std::vector<DecisionRecord> records) ZOMBIE_EXCLUDES(mu_);

  /// Commits a run's prune freezes (at most one per run today; the vector
  /// keeps the serialization shape uniform). Serialized after the run's
  /// pull records, in order.
  void AppendPruneEvents(const std::string& run_label,
                         std::vector<PruneEvent> events) ZOMBIE_EXCLUDES(mu_);

  /// Commits a run's ingestion windows. Serialized after the run's pull
  /// and prune records, in order.
  void AppendIngestEvents(const std::string& run_label,
                          std::vector<IngestEvent> events)
      ZOMBIE_EXCLUDES(mu_);

  size_t num_runs() const ZOMBIE_EXCLUDES(mu_);
  size_t num_records() const ZOMBIE_EXCLUDES(mu_);
  size_t num_prune_events() const ZOMBIE_EXCLUDES(mu_);
  size_t num_ingest_events() const ZOMBIE_EXCLUDES(mu_);

  /// Run labels in serialization (lexicographic) order.
  std::vector<std::string> Labels() const ZOMBIE_EXCLUDES(mu_);

  /// Records for one run label (empty when absent).
  std::vector<DecisionRecord> Records(const std::string& run_label) const
      ZOMBIE_EXCLUDES(mu_);

  /// Prune events for one run label (empty when absent).
  std::vector<PruneEvent> PruneEvents(const std::string& run_label) const
      ZOMBIE_EXCLUDES(mu_);

  /// Ingest events for one run label (empty when absent).
  std::vector<IngestEvent> IngestEvents(const std::string& run_label) const
      ZOMBIE_EXCLUDES(mu_);

  /// JSON Lines: one object per record, runs in label order, records in
  /// pull order. Deterministic byte-for-byte for deterministic runs.
  std::string ToJsonl() const;

  [[nodiscard]] Status WriteJsonl(const std::string& path) const;

 private:
  mutable Mutex mu_;
  std::map<std::string, std::vector<DecisionRecord>> runs_
      ZOMBIE_GUARDED_BY(mu_);
  /// Kept separate from runs_ so runs without pruning leave no trace in
  /// the map (and therefore none in the serialized bytes).
  std::map<std::string, std::vector<PruneEvent>> prunes_
      ZOMBIE_GUARDED_BY(mu_);
  /// Same pattern for streaming: offline runs never touch this map, so
  /// their bytes are exactly the pre-streaming format.
  std::map<std::string, std::vector<IngestEvent>> ingests_
      ZOMBIE_GUARDED_BY(mu_);
};

}  // namespace zombie

#endif  // ZOMBIE_OBS_DECISION_LOG_H_
