#ifndef ZOMBIE_OBS_OBS_H_
#define ZOMBIE_OBS_OBS_H_

#include <memory>

#include "obs/decision_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace zombie {

/// Which sinks an ObsContext owns. Disabling a sink makes every
/// instrumentation site that targets it a null-pointer check — the
/// "no-op sink" configuration bench_obs_overhead uses to bound hook cost.
struct ObsOptions {
  bool metrics = true;
  bool trace = true;
  bool decision_log = true;
};

/// Owning bundle of the three observability sinks, passed to the engine,
/// driver, and CLI as one borrowed pointer (EngineOptions::obs).
///
/// Cost contract (DESIGN.md "Observability"): with no ObsContext
/// (EngineOptions::obs == nullptr) the instrumented paths reduce to
/// branches on a null pointer — no allocation, locking, or clock read per
/// pull; bench_obs_overhead asserts the wall overhead stays within noise
/// (<= 2%) and RunResults stay byte-identical. With a context attached,
/// cost scales with the sinks enabled; the decision log is the most
/// expensive (one heap record per pull).
class ObsContext {
 public:
  explicit ObsContext(ObsOptions options = {});

  ObsContext(const ObsContext&) = delete;
  ObsContext& operator=(const ObsContext&) = delete;

  /// Null when the corresponding sink is disabled in the options.
  MetricsRegistry* metrics() const { return metrics_.get(); }
  TraceRecorder* trace() const { return trace_.get(); }
  DecisionLog* decisions() const { return decisions_.get(); }

  const ObsOptions& options() const { return options_; }

 private:
  ObsOptions options_;
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<TraceRecorder> trace_;
  std::unique_ptr<DecisionLog> decisions_;
};

/// Adapts a MetricsRegistry onto ThreadPool's instrumentation callbacks:
/// "threadpool.queue_depth" gauge, "threadpool.queue_wait_us" and
/// "threadpool.task_us" histograms. Returns empty hooks (uninstrumented
/// pool) when `metrics` is null; otherwise `metrics` must outlive the pool.
ThreadPoolStatsHooks MetricsPoolHooks(MetricsRegistry* metrics);

}  // namespace zombie

#endif  // ZOMBIE_OBS_OBS_H_
