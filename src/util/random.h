#ifndef ZOMBIE_UTIL_RANDOM_H_
#define ZOMBIE_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace zombie {

/// Deterministic, seedable PRNG used everywhere in the library.
///
/// Implementation is xoshiro256** seeded via splitmix64. We roll our own
/// rather than using std::mt19937 so that (a) streams are identical across
/// standard libraries and platforms — experiment traces must be bit-for-bit
/// reproducible — and (b) Fork() can derive independent child streams.
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64 random bits.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound). bound must be positive. Uses rejection
  /// sampling (Lemire-style) to avoid modulo bias.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Standard normal via Box–Muller (caches the second deviate).
  double NextGaussian();

  /// Gaussian with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// Lognormal: exp(N(mu, sigma)).
  double NextLogNormal(double mu, double sigma);

  /// Exponential with the given rate lambda (> 0).
  double NextExponential(double lambda);

  /// Gamma(shape, scale) via Marsaglia–Tsang; shape > 0, scale > 0.
  double NextGamma(double shape, double scale);

  /// Beta(alpha, beta) via two Gamma draws; both parameters > 0.
  double NextBeta(double alpha, double beta);

  /// Zipf-distributed rank in [0, n) with exponent s >= 0 (s = 0 is
  /// uniform). Uses a precomputed-free inversion approximation suitable for
  /// vocabulary sampling; exact normalization is not required for workload
  /// generation but the distribution is a true Zipf via rejection.
  uint64_t NextZipf(uint64_t n, double s);

  /// Samples an index according to non-negative `weights` (need not be
  /// normalized). Returns weights.size() if all weights are zero or the
  /// vector is empty.
  size_t NextDiscrete(const std::vector<double>& weights);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->size() < 2) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBelow(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Derives an independent child generator; the i-th fork of a given
  /// generator state is deterministic.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// Stable 64-bit hash (splitmix64 finalizer) for deriving per-entity seeds.
uint64_t HashCombine(uint64_t a, uint64_t b);

/// FNV-1a hash of a byte string; used for feature hashing and domain ids.
uint64_t HashBytes(const void* data, size_t len);

}  // namespace zombie

#endif  // ZOMBIE_UTIL_RANDOM_H_
