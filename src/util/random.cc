#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace zombie {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  ZCHECK_GT(bound, 0u);
  // Rejection sampling over the top of the range to avoid modulo bias.
  uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  ZCHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range.
  if (span == 0) return static_cast<int64_t>(NextUint64());
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 high bits -> uniform in [0,1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box–Muller; u1 in (0,1] so log(u1) is finite.
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  have_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

double Rng::NextLogNormal(double mu, double sigma) {
  return std::exp(NextGaussian(mu, sigma));
}

double Rng::NextExponential(double lambda) {
  ZCHECK_GT(lambda, 0.0);
  return -std::log(1.0 - NextDouble()) / lambda;
}

double Rng::NextGamma(double shape, double scale) {
  ZCHECK_GT(shape, 0.0);
  ZCHECK_GT(scale, 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and correct (Marsaglia–Tsang trick).
    double u = NextDouble();
    while (u <= 0.0) u = NextDouble();
    return NextGamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = NextGaussian();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    double u = NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return scale * d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return scale * d * v;
    }
  }
}

double Rng::NextBeta(double alpha, double beta) {
  double x = NextGamma(alpha, 1.0);
  double y = NextGamma(beta, 1.0);
  double sum = x + y;
  if (sum <= 0.0) return 0.5;
  return x / sum;
}

uint64_t Rng::NextZipf(uint64_t n, double s) {
  ZCHECK_GT(n, 0u);
  if (n == 1) return 0;
  if (s <= 0.0) return NextBelow(n);
  // Rejection-inversion (Hörmann) for an exact Zipf over ranks 1..n.
  const double nd = static_cast<double>(n);
  auto h = [s](double x) {
    // Integral of x^{-s}.
    if (s == 1.0) return std::log(x);
    return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
  };
  auto h_inv = [s](double y) {
    if (s == 1.0) return std::exp(y);
    return std::pow(1.0 + y * (1.0 - s), 1.0 / (1.0 - s));
  };
  const double hx0 = h(0.5) - 1.0;  // h(1/2) - f(1)
  const double hn = h(nd + 0.5);
  for (;;) {
    double u = NextDouble() * (hn - hx0) + hx0;
    double x = h_inv(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n) k = n;
    double kd = static_cast<double>(k);
    if (u >= h(kd + 0.5) - std::pow(kd, -s)) {
      return k - 1;  // ranks are 0-based externally
    }
  }
}

size_t Rng::NextDiscrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    ZCHECK_GE(w, 0.0);
    total += w;
  }
  if (total <= 0.0) return weights.size();
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  // Floating-point slack: return last positive-weight index.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size();
}

Rng Rng::Fork() { return Rng(NextUint64()); }

uint64_t HashCombine(uint64_t a, uint64_t b) {
  uint64_t x = a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2));
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t HashBytes(const void* data, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace zombie
