#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace zombie {

namespace {
// Process-wide log threshold. Deliberately global (the ZLOG macros cannot
// thread a registry through every call site) and atomic; it steers only
// logging verbosity, never results.
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};  // zombie-lint: allow(no-mutable-global)

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

// Strips the directory part so log lines show "engine.cc:42".
const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  std::fflush(stderr);
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal_logging
}  // namespace zombie
