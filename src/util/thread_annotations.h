#ifndef ZOMBIE_UTIL_THREAD_ANNOTATIONS_H_
#define ZOMBIE_UTIL_THREAD_ANNOTATIONS_H_

// Clang thread-safety annotations + capability-annotated lock primitives.
//
// Every optimization since PR 2 (feature cache, thread-pooled driver,
// parallel holdout, speculative prefetch) rests on a byte-identical-results
// invariant whose enforcement used to be purely dynamic (tests, TSan). This
// header makes the locking discipline a *compile-time* artifact: members are
// declared ZOMBIE_GUARDED_BY their mutex, locking helpers carry
// ZOMBIE_ACQUIRE / ZOMBIE_RELEASE, and functions that expect a lock held (or
// not held) say so with ZOMBIE_REQUIRES / ZOMBIE_EXCLUDES. Under clang with
// -Wthread-safety (CMake option ZOMBIE_THREAD_SAFETY=ON, -Werror in CI) an
// unannotated access to protected state fails the build; under gcc and
// other compilers the macros expand to nothing and the wrappers are plain
// std::mutex / std::shared_mutex shims with identical runtime behavior
// (TSan and the sanitizer legs see straight through them).
//
// Convention: library code takes locks only through the wrappers below
// (zombie::Mutex / zombie::SharedMutex + the RAII *MutexLock guards), never
// through bare std::mutex — a bare standard mutex is invisible to the
// analysis, so any state it protects is unchecked. zombie_lint's
// determinism rules and DESIGN.md "Static analysis" document the rest of
// the contract.

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__)
#define ZOMBIE_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define ZOMBIE_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

/// Marks a type as a capability (lockable). The string names the capability
/// kind in diagnostics ("mutex", "shared_mutex").
#define ZOMBIE_CAPABILITY(x) ZOMBIE_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases a
/// capability.
#define ZOMBIE_SCOPED_CAPABILITY ZOMBIE_THREAD_ANNOTATION_(scoped_lockable)

/// Declares that a member is protected by the given capability: reads
/// require the capability held (shared or exclusive), writes require it
/// held exclusively.
#define ZOMBIE_GUARDED_BY(x) ZOMBIE_THREAD_ANNOTATION_(guarded_by(x))

/// Like ZOMBIE_GUARDED_BY, but for the data *pointed to* by a pointer
/// member (the pointer itself is unguarded).
#define ZOMBIE_PT_GUARDED_BY(x) ZOMBIE_THREAD_ANNOTATION_(pt_guarded_by(x))

/// The function may only be called with the capability held exclusively;
/// it does not acquire or release it.
#define ZOMBIE_REQUIRES(...) \
  ZOMBIE_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// The function may only be called with the capability held (shared is
/// enough).
#define ZOMBIE_REQUIRES_SHARED(...) \
  ZOMBIE_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability exclusively and holds it on return.
#define ZOMBIE_ACQUIRE(...) \
  ZOMBIE_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// The function acquires the capability shared and holds it on return.
#define ZOMBIE_ACQUIRE_SHARED(...) \
  ZOMBIE_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// The function releases the capability (exclusive).
#define ZOMBIE_RELEASE(...) \
  ZOMBIE_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// The function releases the capability (shared).
#define ZOMBIE_RELEASE_SHARED(...) \
  ZOMBIE_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// The function releases the capability whether it was held shared or
/// exclusive (used on guards that can wrap either mode).
#define ZOMBIE_RELEASE_GENERIC(...) \
  ZOMBIE_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

/// The function attempts the acquisition; the first argument is the return
/// value that signals success.
#define ZOMBIE_TRY_ACQUIRE(...) \
  ZOMBIE_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// The caller must NOT hold the capability (non-reentrant locking:
/// documents and checks the public-API side of a lock's contract).
#define ZOMBIE_EXCLUDES(...) \
  ZOMBIE_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Asserts (for the analysis only) that the capability is held.
#define ZOMBIE_ASSERT_CAPABILITY(x) \
  ZOMBIE_THREAD_ANNOTATION_(assert_capability(x))

/// The function returns a reference to the given capability.
#define ZOMBIE_RETURN_CAPABILITY(x) ZOMBIE_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: the function's body is not analyzed. Use only for code
/// whose correctness the analysis cannot express, with a comment saying
/// why.
#define ZOMBIE_NO_THREAD_SAFETY_ANALYSIS \
  ZOMBIE_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace zombie {

/// Capability-annotated exclusive mutex. A thin shim over std::mutex that
/// the thread-safety analysis can see; prefer the MutexLock RAII guard over
/// calling Lock/Unlock directly.
class ZOMBIE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ZOMBIE_ACQUIRE() { mu_.lock(); }
  void Unlock() ZOMBIE_RELEASE() { mu_.unlock(); }
  bool TryLock() ZOMBIE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped standard mutex, for interop with std::condition_variable
  /// (see CondVar). Access through this pointer is invisible to the
  /// analysis — do not lock it directly.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// Capability-annotated reader/writer mutex over std::shared_mutex.
class ZOMBIE_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ZOMBIE_ACQUIRE() { mu_.lock(); }
  void Unlock() ZOMBIE_RELEASE() { mu_.unlock(); }
  void ReaderLock() ZOMBIE_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void ReaderUnlock() ZOMBIE_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock on a zombie::Mutex. Holds a std::unique_lock
/// internally so CondVar can wait on it.
class ZOMBIE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ZOMBIE_ACQUIRE(mu) : lock_(mu->native()) {}
  // Empty body (not "= default"): GNU attributes and defaulted special
  // members do not mix on all toolchains. lock_ releases in its own dtor.
  ~MutexLock() ZOMBIE_RELEASE() {}  // NOLINT(modernize-use-equals-default)

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// For CondVar::Wait only; the lock is owned for the guard's whole scope.
  std::unique_lock<std::mutex>& native_handle() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// RAII shared (reader) lock on a zombie::SharedMutex.
class ZOMBIE_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) ZOMBIE_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_->ReaderLock();
  }
  ~ReaderMutexLock() ZOMBIE_RELEASE_GENERIC() { mu_->ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// RAII exclusive (writer) lock on a zombie::SharedMutex.
class ZOMBIE_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) ZOMBIE_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() ZOMBIE_RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// Condition variable that waits on a MutexLock. Wait() releases and
/// reacquires the underlying mutex internally; from the analysis' point of
/// view the capability is held across the call, which matches the caller's
/// view (the lock is held whenever the predicate is evaluated). Spurious
/// wakeups are possible — always wait in a predicate loop.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock* lock) { cv_.wait(lock->native_handle()); }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace zombie

#endif  // ZOMBIE_UTIL_THREAD_ANNOTATIONS_H_
