#ifndef ZOMBIE_UTIL_FILE_LOCK_H_
#define ZOMBIE_UTIL_FILE_LOCK_H_

#include <string>

#include "util/status.h"

namespace zombie {

/// Lock flavor for FileLock::Acquire. Classic single-writer/shared-reader
/// semantics: any number of kShared holders coexist, kExclusive excludes
/// everyone else.
enum class FileLockMode {
  kShared,
  kExclusive,
};

const char* FileLockModeName(FileLockMode mode);

/// RAII advisory file lock (BSD flock) for cross-process coordination.
///
/// The persistent feature store uses one of these per store file: the
/// single writer holds kExclusive, concurrent readers hold kShared, and a
/// process that cannot get the mode it wants degrades (writer -> reader,
/// reader -> lock-free reads) instead of blocking. Advisory means exactly
/// that — the lock only coordinates processes that also take it.
///
/// The lock is attached to the open file description, so it is released
/// automatically when the holder exits or is SIGKILLed (the kernel closes
/// the fd) — no stale-lock recovery is ever needed. Two Acquire calls in
/// the same process use separate file descriptions and therefore contend
/// with each other like two processes would.
class FileLock {
 public:
  /// Opens `path` (creating it if needed) and takes a lock in `mode`.
  /// Non-blocking unless `blocking`: when the lock is held incompatibly,
  /// returns FailedPrecondition instead of waiting.
  static StatusOr<FileLock> Acquire(const std::string& path,
                                    FileLockMode mode, bool blocking = false);

  /// An empty holder (held() == false).
  FileLock() = default;
  /// Releases the lock (closes the descriptor).
  ~FileLock();

  FileLock(FileLock&& other) noexcept;
  FileLock& operator=(FileLock&& other) noexcept;
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

  bool held() const { return fd_ >= 0; }
  FileLockMode mode() const { return mode_; }
  const std::string& path() const { return path_; }

  /// Releases early; held() becomes false. Safe to call repeatedly.
  void Release();

 private:
  FileLock(int fd, FileLockMode mode, std::string path)
      : fd_(fd), mode_(mode), path_(std::move(path)) {}

  int fd_ = -1;
  FileLockMode mode_ = FileLockMode::kShared;
  std::string path_;
};

}  // namespace zombie

#endif  // ZOMBIE_UTIL_FILE_LOCK_H_
