#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/random.h"

namespace zombie {

void RunningStats::Add(double x) {
  ++count_;
  sum_ += x;
  if (count_ == 1) {
    mean_ = x;
    min_ = x;
    max_ = x;
    m2_ = 0.0;
    return;
  }
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const {
  if (count_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

void RunningStats::Reset() { *this = RunningStats(); }

void WindowedMean::Add(double x) {
  values_.push_back(x);
  sum_ += x;
  ++total_count_;
  if (window_ > 0 && values_.size() > window_) {
    sum_ -= values_.front();
    values_.pop_front();
  }
}

double WindowedMean::mean() const {
  if (values_.empty()) return 0.0;
  return sum_ / static_cast<double>(values_.size());
}

void WindowedMean::Reset() {
  values_.clear();
  sum_ = 0.0;
  total_count_ = 0;
}

void DiscountedMean::Add(double x) {
  weighted_sum_ = weighted_sum_ * gamma_ + x;
  weight_ = weight_ * gamma_ + 1.0;
}

double DiscountedMean::mean() const {
  if (weight_ <= 0.0) return 0.0;
  return weighted_sum_ / weight_;
}

void DiscountedMean::Reset() {
  weighted_sum_ = 0.0;
  weight_ = 0.0;
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = Mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double StdDev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double Median(std::vector<double> xs) { return Quantile(std::move(xs), 0.5); }

double Quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  ZCHECK_GE(q, 0.0);
  ZCHECK_LE(q, 1.0);
  std::sort(xs.begin(), xs.end());
  double pos = q * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

BootstrapCi BootstrapMeanCi(const std::vector<double>& xs, double confidence,
                            int resamples, Rng* rng) {
  BootstrapCi ci;
  ci.point = Mean(xs);
  if (xs.size() < 2 || resamples < 2) {
    ci.lo = ci.hi = ci.point;
    return ci;
  }
  std::vector<double> means;
  means.reserve(static_cast<size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    double s = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
      s += xs[rng->NextBelow(xs.size())];
    }
    means.push_back(s / static_cast<double>(xs.size()));
  }
  double alpha = 1.0 - confidence;
  ci.lo = Quantile(means, alpha / 2.0);
  ci.hi = Quantile(std::move(means), 1.0 - alpha / 2.0);
  return ci;
}

double WelchT(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() < 2 || b.size() < 2) return 0.0;
  double va = Variance(a) / static_cast<double>(a.size());
  double vb = Variance(b) / static_cast<double>(b.size());
  double denom = std::sqrt(va + vb);
  if (denom == 0.0) return 0.0;
  return (Mean(a) - Mean(b)) / denom;
}

}  // namespace zombie
