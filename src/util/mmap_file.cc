#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace zombie {

namespace {

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

}  // namespace

StatusOr<MmapFile> MmapFile::OpenOrCreate(const std::string& path,
                                          uint64_t min_size) {
  if (min_size == 0) {
    return Status::InvalidArgument("mmap min_size must be > 0: " + path);
  }
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return Status::IOError(ErrnoMessage("open", path));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError(ErrnoMessage("fstat", path));
  }
  uint64_t size = static_cast<uint64_t>(st.st_size);
  if (size < min_size) {
    if (::ftruncate(fd, static_cast<off_t>(min_size)) != 0) {
      ::close(fd);
      return Status::IOError(ErrnoMessage("ftruncate", path));
    }
    size = min_size;
  }
  void* map = ::mmap(nullptr, static_cast<size_t>(size),
                     PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (map == MAP_FAILED) {
    ::close(fd);
    return Status::IOError(ErrnoMessage("mmap", path));
  }
  return MmapFile(fd, static_cast<uint8_t*>(map), size, /*writable=*/true);
}

StatusOr<MmapFile> MmapFile::OpenReadOnly(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Status::IOError(ErrnoMessage("open", path));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError(ErrnoMessage("fstat", path));
  }
  uint64_t size = static_cast<uint64_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return Status::IOError("cannot map empty file: " + path);
  }
  void* map = ::mmap(nullptr, static_cast<size_t>(size), PROT_READ,
                     MAP_SHARED, fd, 0);
  if (map == MAP_FAILED) {
    ::close(fd);
    return Status::IOError(ErrnoMessage("mmap", path));
  }
  return MmapFile(fd, static_cast<uint8_t*>(map), size, /*writable=*/false);
}

MmapFile::~MmapFile() { Close(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : fd_(other.fd_),
      data_(other.data_),
      size_(other.size_),
      writable_(other.writable_) {
  other.fd_ = -1;
  other.data_ = nullptr;
  other.size_ = 0;
  other.writable_ = false;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, uint64_t{0});
    writable_ = std::exchange(other.writable_, false);
  }
  return *this;
}

Status MmapFile::Grow(uint64_t new_size) {
  if (!valid()) return Status::FailedPrecondition("Grow on unmapped file");
  if (!writable_) return Status::FailedPrecondition("Grow on read-only map");
  if (new_size <= size_) return Status::OK();
  if (::ftruncate(fd_, static_cast<off_t>(new_size)) != 0) {
    return Status::IOError(std::string("ftruncate: ") + std::strerror(errno));
  }
  // munmap + mmap instead of mremap: the mapping may move either way, and
  // plain mmap keeps this wrapper portable across libc flavors.
  ::munmap(data_, static_cast<size_t>(size_));
  void* map = ::mmap(nullptr, static_cast<size_t>(new_size),
                     PROT_READ | PROT_WRITE, MAP_SHARED, fd_, 0);
  if (map == MAP_FAILED) {
    data_ = nullptr;
    size_ = 0;
    return Status::IOError(std::string("mmap: ") + std::strerror(errno));
  }
  data_ = static_cast<uint8_t*>(map);
  size_ = new_size;
  return Status::OK();
}

Status MmapFile::Sync() {
  if (!valid()) return Status::FailedPrecondition("Sync on unmapped file");
  if (!writable_) return Status::OK();
  if (::msync(data_, static_cast<size_t>(size_), MS_SYNC) != 0) {
    return Status::IOError(std::string("msync: ") + std::strerror(errno));
  }
  return Status::OK();
}

void MmapFile::Close() {
  if (data_ != nullptr) {
    ::munmap(data_, static_cast<size_t>(size_));
    data_ = nullptr;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  size_ = 0;
  writable_ = false;
}

}  // namespace zombie
