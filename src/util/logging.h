#ifndef ZOMBIE_UTIL_LOGGING_H_
#define ZOMBIE_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace zombie {

/// Severity levels for the library logger. kFatal aborts the process after
/// emitting the message (used for unrecoverable invariant violations).
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Sets the minimum severity that is emitted. Defaults to kInfo. Benches set
/// kWarning to keep experiment tables clean.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log line collector; emits on destruction. Not for direct
/// use — use the ZLOG / ZCHECK macros.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the log level is filtered out.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace zombie

/// Stream-style logging: `ZLOG(Info) << "indexed " << n << " items";`.
/// Filtered below the configured level without evaluating the stream chain.
#define ZLOG(level)                                                     \
  if (static_cast<int>(::zombie::LogLevel::k##level) <                  \
      static_cast<int>(::zombie::GetLogLevel())) {                      \
  } else                                                                \
    ::zombie::internal_logging::LogMessage(::zombie::LogLevel::k##level, \
                                           __FILE__, __LINE__)          \
        .stream()

/// Aborts with a message when `cond` does not hold. Active in all build
/// modes: invariant violations in a data system must never be silent.
#define ZCHECK(cond)                                                       \
  if (cond) {                                                              \
  } else                                                                   \
    ::zombie::internal_logging::LogMessage(::zombie::LogLevel::kFatal,     \
                                           __FILE__, __LINE__)             \
            .stream()                                                      \
        << "Check failed: " #cond " "

#define ZCHECK_EQ(a, b) ZCHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define ZCHECK_NE(a, b) ZCHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define ZCHECK_LT(a, b) ZCHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define ZCHECK_LE(a, b) ZCHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define ZCHECK_GT(a, b) ZCHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define ZCHECK_GE(a, b) ZCHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

/// Checks that a Status-returning expression is OK; aborts otherwise.
#define ZCHECK_OK(expr)                                        \
  do {                                                         \
    ::zombie::Status _zst = (expr);                            \
    ZCHECK(_zst.ok()) << _zst.ToString();                      \
  } while (0)

#endif  // ZOMBIE_UTIL_LOGGING_H_
