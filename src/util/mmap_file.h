#ifndef ZOMBIE_UTIL_MMAP_FILE_H_
#define ZOMBIE_UTIL_MMAP_FILE_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace zombie {

/// Checked memory-mapped file. This is the one place in the library that
/// calls mmap/munmap/msync directly (enforced by zombie_lint's no-raw-mmap
/// rule): every consumer — the persistent feature store above all — goes
/// through this wrapper so bounds, growth, and teardown are handled once.
///
/// Mapping contract: the mapping always covers exactly [0, size()) of the
/// underlying file (MAP_SHARED), so stores through data() land in the
/// kernel page cache and survive a SIGKILL of this process without any
/// explicit sync; Sync() is only needed to survive a machine crash.
/// Writable mappings are created (or extended) with ftruncate first, so
/// in-bounds access never faults on a short file.
///
/// Not internally synchronized: Grow() remaps and may move data(), so
/// callers that share an MmapFile across threads must serialize Grow()
/// against all access (the feature store holds its writer lock across it).
class MmapFile {
 public:
  /// Opens `path` read-write, creating it if needed, and extends it to at
  /// least `min_size` bytes before mapping. `min_size` must be > 0.
  static StatusOr<MmapFile> OpenOrCreate(const std::string& path,
                                         uint64_t min_size);

  /// Maps an existing file read-only. Fails with NotFound if it does not
  /// exist and IOError if it is empty (nothing to map).
  static StatusOr<MmapFile> OpenReadOnly(const std::string& path);

  /// An empty, unmapped placeholder (valid() == false).
  MmapFile() = default;
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  bool valid() const { return data_ != nullptr; }
  bool writable() const { return writable_; }
  uint64_t size() const { return size_; }

  /// Base of the mapping; stable until Grow() or destruction.
  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }

  /// Extends the file to `new_size` (no-op if already that large) and
  /// remaps; data() may move. Writable mappings only.
  Status Grow(uint64_t new_size);

  /// Flushes dirty pages to stable storage (synchronous).
  Status Sync();

  /// Unmaps and closes; valid() becomes false. Safe to call repeatedly.
  void Close();

 private:
  MmapFile(int fd, uint8_t* data, uint64_t size, bool writable)
      : fd_(fd), data_(data), size_(size), writable_(writable) {}

  int fd_ = -1;
  uint8_t* data_ = nullptr;
  uint64_t size_ = 0;
  bool writable_ = false;
};

}  // namespace zombie

#endif  // ZOMBIE_UTIL_MMAP_FILE_H_
