#include "util/file_lock.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace zombie {

const char* FileLockModeName(FileLockMode mode) {
  switch (mode) {
    case FileLockMode::kShared:
      return "shared";
    case FileLockMode::kExclusive:
      return "exclusive";
  }
  return "?";
}

StatusOr<FileLock> FileLock::Acquire(const std::string& path,
                                     FileLockMode mode, bool blocking) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  int op = mode == FileLockMode::kExclusive ? LOCK_EX : LOCK_SH;
  if (!blocking) op |= LOCK_NB;
  int rc;
  do {
    rc = ::flock(fd, op);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    int saved = errno;
    ::close(fd);
    if (saved == EWOULDBLOCK) {
      return Status::FailedPrecondition(
          std::string(FileLockModeName(mode)) + " lock on " + path +
          " is held by another process");
    }
    return Status::IOError("flock " + path + ": " + std::strerror(saved));
  }
  return FileLock(fd, mode, path);
}

FileLock::~FileLock() { Release(); }

FileLock::FileLock(FileLock&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      mode_(other.mode_),
      path_(std::move(other.path_)) {}

FileLock& FileLock::operator=(FileLock&& other) noexcept {
  if (this != &other) {
    Release();
    fd_ = std::exchange(other.fd_, -1);
    mode_ = other.mode_;
    path_ = std::move(other.path_);
  }
  return *this;
}

void FileLock::Release() {
  if (fd_ >= 0) {
    // close() drops the flock with the file description; no explicit
    // LOCK_UN needed (and none would survive a SIGKILL anyway).
    ::close(fd_);
    fd_ = -1;
  }
  path_.clear();
}

}  // namespace zombie
