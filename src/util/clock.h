#ifndef ZOMBIE_UTIL_CLOCK_H_
#define ZOMBIE_UTIL_CLOCK_H_

#include <chrono>
#include <cstdint>
#include <string>

namespace zombie {

/// Deterministic simulated time source, in microseconds.
///
/// The Zombie engine charges each processed item its (corpus-assigned)
/// feature-extraction cost against a VirtualClock instead of burning real
/// CPU. This makes every "time to quality" number in tests and benches
/// exactly reproducible while preserving the cost *ratios* that determine
/// the paper's speedup shapes (see DESIGN.md, substitutions table).
class VirtualClock {
 public:
  VirtualClock() = default;

  /// Advances simulated time; cost must be non-negative.
  void Advance(int64_t micros);

  /// Current simulated time since construction/Reset, in microseconds.
  int64_t NowMicros() const { return now_micros_; }

  /// Simulated seconds as a double.
  double NowSeconds() const { return static_cast<double>(now_micros_) / 1e6; }

  void Reset() { now_micros_ = 0; }

 private:
  int64_t now_micros_ = 0;
};

/// Wall-clock stopwatch for reporting real execution overhead (index
/// construction, engine bookkeeping) alongside virtual time.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  /// Elapsed wall time in microseconds since construction or Restart().
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / 1e6;
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Renders a duration like "1h23m" / "4m05s" / "12.3s" / "870ms" for tables.
std::string FormatDuration(int64_t micros);

}  // namespace zombie

#endif  // ZOMBIE_UTIL_CLOCK_H_
