#ifndef ZOMBIE_UTIL_STATUS_H_
#define ZOMBIE_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace zombie {

/// Error categories used across the library. Mirrors the usual
/// database-system status taxonomy (RocksDB/Arrow style): library code never
/// throws; fallible operations return a Status (or StatusOr<T>).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIOError,
  kExhausted,
};

/// A lightweight success/error result carrying a code and a message.
///
/// The OK status is cheap (no allocation). Construction helpers mirror the
/// code names: `Status::InvalidArgument("...")` etc. Marked [[nodiscard]]:
/// silently dropping an error Status is a bug, so every producer must be
/// checked, propagated (ZOMBIE_RETURN_IF_ERROR), or asserted (ZCHECK_OK).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Exhausted(std::string msg) {
    return Status(StatusCode::kExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: k must be positive".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Name of a status code, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// Either a value of type T or an error Status. Minimal StatusOr: access to
/// value() on an error status aborts via CHECK, so callers must test ok()
/// first (enforced in debug and release alike).
///
/// The payload lives in a std::optional so T need not be
/// default-constructible; an error-state StatusOr holds no T at all.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit construction from a value or from an error status keeps call
  /// sites terse: `return 42;` / `return Status::InvalidArgument(...)`.
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T& value() & {
    AbortIfError();
    return *value_;
  }
  T&& value() && {
    AbortIfError();
    return *std::move(value_);
  }

 private:
  void AbortIfError() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal_status {
[[noreturn]] void DieOnBadStatusAccess(const Status& status);
}  // namespace internal_status

template <typename T>
void StatusOr<T>::AbortIfError() const {
  if (!status_.ok()) internal_status::DieOnBadStatusAccess(status_);
}

/// Propagates an error status from an expression producing a Status.
#define ZOMBIE_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::zombie::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                        \
  } while (0)

#define ZOMBIE_STATUS_CONCAT_INNER_(a, b) a##b
#define ZOMBIE_STATUS_CONCAT_(a, b) ZOMBIE_STATUS_CONCAT_INNER_(a, b)

/// Evaluates `expr` (a StatusOr<T>), returns its status on error, otherwise
/// moves the value into `lhs`:
///
///   ZOMBIE_ASSIGN_OR_RETURN(Corpus corpus, LoadCorpus(path));
///
/// `lhs` may declare a new variable or assign to an existing one. Not usable
/// twice on one line (the temporary is named after __LINE__).
#define ZOMBIE_ASSIGN_OR_RETURN(lhs, expr)                            \
  ZOMBIE_ASSIGN_OR_RETURN_IMPL_(                                      \
      ZOMBIE_STATUS_CONCAT_(_zombie_statusor_, __LINE__), lhs, expr)

#define ZOMBIE_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

}  // namespace zombie

#endif  // ZOMBIE_UTIL_STATUS_H_
