#include "util/clock.h"

#include <cstdio>

#include "util/logging.h"

namespace zombie {

void VirtualClock::Advance(int64_t micros) {
  ZCHECK_GE(micros, 0);
  now_micros_ += micros;
}

std::string FormatDuration(int64_t micros) {
  char buf[64];
  if (micros < 0) micros = 0;
  double secs = static_cast<double>(micros) / 1e6;
  if (secs < 0.001) {
    std::snprintf(buf, sizeof(buf), "%ldus", static_cast<long>(micros));
  } else if (secs < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.0fms", secs * 1e3);
  } else if (secs < 60.0) {
    std::snprintf(buf, sizeof(buf), "%.1fs", secs);
  } else if (secs < 3600.0) {
    int m = static_cast<int>(secs) / 60;
    int s = static_cast<int>(secs) % 60;
    std::snprintf(buf, sizeof(buf), "%dm%02ds", m, s);
  } else {
    int h = static_cast<int>(secs) / 3600;
    int m = (static_cast<int>(secs) % 3600) / 60;
    std::snprintf(buf, sizeof(buf), "%dh%02dm", h, m);
  }
  return buf;
}

}  // namespace zombie
