#ifndef ZOMBIE_UTIL_TABLE_WRITER_H_
#define ZOMBIE_UTIL_TABLE_WRITER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace zombie {

/// Collects rows and renders them either as an aligned ASCII table (for the
/// bench binaries' stdout, mirroring the paper's tables) or as CSV (for
/// downstream plotting of the figure analogues).
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header);

  /// Starts a new row; subsequent Cell() calls fill it left to right.
  void BeginRow();
  void Cell(const std::string& value);
  void Cell(const char* value);
  void Cell(double value, int precision = 3);
  void Cell(int64_t value);
  void Cell(int value) { Cell(static_cast<int64_t>(value)); }
  void Cell(size_t value) { Cell(static_cast<int64_t>(value)); }

  size_t num_rows() const { return rows_.size(); }

  /// Renders an aligned, boxed ASCII table.
  std::string ToAscii() const;

  /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
  std::string ToCsv() const;

  /// Convenience: print the ASCII form to `out` (default stdout).
  void Print(std::FILE* out = stdout) const;

  /// Writes the CSV form to a file. Returns false on I/O failure.
  bool WriteCsvFile(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace zombie

#endif  // ZOMBIE_UTIL_TABLE_WRITER_H_
