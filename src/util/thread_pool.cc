#include "util/thread_pool.h"

#include <optional>

#include "util/logging.h"

namespace zombie {

ThreadPool::ThreadPool(size_t num_threads, ThreadPoolStatsHooks hooks)
    : hooks_(std::move(hooks)) {
  ZCHECK_GE(num_threads, 1u);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  accepting_.store(false, std::memory_order_release);
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  ZCHECK(accepting_.load(std::memory_order_acquire))
      << "ThreadPool::Submit after destruction began";
  QueuedTask queued;
  queued.fn = std::move(task);
  if (hooks_.on_dequeue) queued.enqueue_micros = epoch_.ElapsedMicros();
  size_t depth = 0;
  {
    MutexLock lock(&mu_);
    ZCHECK(!shutdown_) << "ThreadPool::Submit after shutdown";
    queue_.push(std::move(queued));
    ++in_flight_;
    depth = queue_.size();
  }
  work_cv_.NotifyOne();
  // Outside the lock: hooks may be arbitrarily slow metric adapters.
  if (hooks_.on_submit) hooks_.on_submit(depth);
}

void ThreadPool::Wait() {
  MutexLock lock(&mu_);
  while (in_flight_ != 0) idle_cv_.Wait(&lock);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    QueuedTask task;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && queue_.empty()) work_cv_.Wait(&lock);
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    if (hooks_.on_dequeue) {
      hooks_.on_dequeue(epoch_.ElapsedMicros() - task.enqueue_micros);
    }
    if (hooks_.on_complete) {
      Stopwatch task_watch;
      task.fn();
      hooks_.on_complete(task_watch.ElapsedMicros());
    } else {
      task.fn();
    }
    {
      MutexLock lock(&mu_);
      --in_flight_;
      if (in_flight_ == 0) idle_cv_.NotifyAll();
    }
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  for (size_t i = 0; i < n; ++i) {
    pool->Submit([&fn, i] { fn(i); });
  }
  pool->Wait();
}

Status ParallelForStatus(ThreadPool* pool, size_t n,
                         const std::function<Status(size_t)>& fn) {
  Mutex first_mu;
  std::optional<size_t> first_index;
  Status first_status = Status::OK();
  for (size_t i = 0; i < n; ++i) {
    pool->Submit([&, i] {
      Status st = fn(i);
      if (st.ok()) return;
      MutexLock lock(&first_mu);
      if (!first_index.has_value() || i < *first_index) {
        first_index = i;
        first_status = std::move(st);
      }
    });
  }
  pool->Wait();
  return first_status;
}

}  // namespace zombie
