#ifndef ZOMBIE_UTIL_THREAD_POOL_H_
#define ZOMBIE_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "util/status.h"

namespace zombie {

/// Fixed-size worker pool used by the experiment driver and benches to run
/// independent experiment trials in parallel. The engine itself stays
/// single-threaded — trial-level parallelism keeps every trace deterministic
/// (each trial owns its RNG).
class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Submitting after the destructor has begun is a
  /// checked fatal error (the flag is flipped before the workers are
  /// joined, so a racing Submit dies loudly instead of corrupting the
  /// queue). Submitting from within a running task is safe.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task (including tasks submitted by tasks)
  /// has completed.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers
  std::condition_variable idle_cv_;   // signals Wait()
  std::queue<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // queued + currently running
  bool shutdown_ = false;
  /// Set (before `mu_` is even taken) at the top of the destructor;
  /// Submit checks it first so a use-after-shutdown fails fast even when
  /// the mutex state is already suspect.
  std::atomic<bool> accepting_{true};
  std::vector<std::thread> threads_;
};

/// Runs fn(i) for i in [0, n) across the pool and waits for completion.
/// The body has no failure channel; a body that can fail should use
/// ParallelForStatus instead.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

/// Runs fn(i) for i in [0, n) across the pool, waits for completion, and
/// returns the failure with the smallest index (or OK). Every iteration
/// runs regardless of other iterations' failures — results must not depend
/// on which worker noticed a problem first — but only the first failure by
/// index is reported, deterministically at any thread count.
[[nodiscard]] Status ParallelForStatus(
    ThreadPool* pool, size_t n, const std::function<Status(size_t)>& fn);

}  // namespace zombie

#endif  // ZOMBIE_UTIL_THREAD_POOL_H_
