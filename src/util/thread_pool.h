#ifndef ZOMBIE_UTIL_THREAD_POOL_H_
#define ZOMBIE_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/clock.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace zombie {

/// Optional pool instrumentation callbacks. Plain std::functions rather
/// than a MetricsRegistry* so zombie_util stays below zombie_obs in the
/// dependency stack — callers (experiment driver, CLI) adapt these hooks
/// onto whatever sink they own. Every hook may be empty; an empty hook
/// costs one boolean check on its code path and skips the clock reads
/// that feed it. Hooks are invoked from worker and submitter threads
/// concurrently and must be thread-safe.
struct ThreadPoolStatsHooks {
  /// After a task is enqueued: number of tasks sitting in the queue
  /// (excluding running tasks).
  std::function<void(size_t queue_depth)> on_submit;
  /// When a worker dequeues a task: microseconds it spent queued.
  std::function<void(int64_t queue_wait_micros)> on_dequeue;
  /// When a task finishes: microseconds it spent executing.
  std::function<void(int64_t task_micros)> on_complete;
};

/// Fixed-size worker pool used by the experiment driver and benches to run
/// independent experiment trials in parallel. The engine itself stays
/// single-threaded — trial-level parallelism keeps every trace deterministic
/// (each trial owns its RNG).
class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1). `hooks` are fixed for the pool's
  /// lifetime (no data race with running workers).
  explicit ThreadPool(size_t num_threads, ThreadPoolStatsHooks hooks = {});

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Submitting after the destructor has begun is a
  /// checked fatal error (the flag is flipped before the workers are
  /// joined, so a racing Submit dies loudly instead of corrupting the
  /// queue). Submitting from within a running task is safe.
  void Submit(std::function<void()> task) ZOMBIE_EXCLUDES(mu_);

  /// Blocks until every submitted task (including tasks submitted by tasks)
  /// has completed.
  void Wait() ZOMBIE_EXCLUDES(mu_);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop() ZOMBIE_EXCLUDES(mu_);

  struct QueuedTask {
    std::function<void()> fn;
    /// Enqueue timestamp (epoch_ micros); 0 when on_dequeue is unset so
    /// the uninstrumented Submit path never reads the clock.
    int64_t enqueue_micros = 0;
  };

  ThreadPoolStatsHooks hooks_;
  /// Time base for the queue-wait hook; only read when hooks are set.
  Stopwatch epoch_;
  Mutex mu_;
  CondVar work_cv_;   // signals workers
  CondVar idle_cv_;   // signals Wait()
  std::queue<QueuedTask> queue_ ZOMBIE_GUARDED_BY(mu_);
  /// Queued + currently running tasks.
  size_t in_flight_ ZOMBIE_GUARDED_BY(mu_) = 0;
  bool shutdown_ ZOMBIE_GUARDED_BY(mu_) = false;
  /// Set (before `mu_` is even taken) at the top of the destructor;
  /// Submit checks it first so a use-after-shutdown fails fast even when
  /// the mutex state is already suspect.
  std::atomic<bool> accepting_{true};
  std::vector<std::thread> threads_;
};

/// Runs fn(i) for i in [0, n) across the pool and waits for completion.
/// The body has no failure channel; a body that can fail should use
/// ParallelForStatus instead.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

/// Runs fn(i) for i in [0, n) across the pool, waits for completion, and
/// returns the failure with the smallest index (or OK). Every iteration
/// runs regardless of other iterations' failures — results must not depend
/// on which worker noticed a problem first — but only the first failure by
/// index is reported, deterministically at any thread count.
[[nodiscard]] Status ParallelForStatus(
    ThreadPool* pool, size_t n, const std::function<Status(size_t)>& fn);

}  // namespace zombie

#endif  // ZOMBIE_UTIL_THREAD_POOL_H_
