#ifndef ZOMBIE_UTIL_THREAD_POOL_H_
#define ZOMBIE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace zombie {

/// Fixed-size worker pool used by benches to run independent experiment
/// trials in parallel. The engine itself stays single-threaded — trial-level
/// parallelism keeps every trace deterministic (each trial owns its RNG).
class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Must not be called after Wait() has begun returning
  /// with the intent of destroying the pool, but is safe from tasks.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task (including tasks submitted by tasks)
  /// has completed.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers
  std::condition_variable idle_cv_;   // signals Wait()
  std::queue<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // queued + currently running
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

/// Runs fn(i) for i in [0, n) across the pool and waits for completion.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace zombie

#endif  // ZOMBIE_UTIL_THREAD_POOL_H_
