#ifndef ZOMBIE_UTIL_STRING_UTIL_H_
#define ZOMBIE_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace zombie {

/// Splits on any occurrence of `sep`; empty fields are preserved.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII-only case fold.
std::string ToLowerAscii(std::string_view s);

/// Strips leading/trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));  // zombie-lint: allow(no-stdout)

}  // namespace zombie

#endif  // ZOMBIE_UTIL_STRING_UTIL_H_
