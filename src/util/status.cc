#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace zombie {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kExhausted:
      return "Exhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace internal_status {

void DieOnBadStatusAccess(const Status& status) {
  std::fprintf(stderr, "FATAL: StatusOr::value() on error status: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal_status
}  // namespace zombie
