#include "util/table_writer.h"

#include <algorithm>
#include <cinttypes>

#include "util/logging.h"

namespace zombie {

TableWriter::TableWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  ZCHECK(!header_.empty()) << "table needs at least one column";
}

void TableWriter::BeginRow() { rows_.emplace_back(); }

void TableWriter::Cell(const std::string& value) {
  ZCHECK(!rows_.empty()) << "Cell() before BeginRow()";
  ZCHECK_LT(rows_.back().size(), header_.size());
  rows_.back().push_back(value);
}

void TableWriter::Cell(const char* value) { Cell(std::string(value)); }

void TableWriter::Cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  Cell(std::string(buf));
}

void TableWriter::Cell(int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  Cell(std::string(buf));
}

std::string TableWriter::ToAscii() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto rule = [&]() {
    std::string s = "+";
    for (size_t w : widths) s += std::string(w + 2, '-') + "+";
    s += "\n";
    return s;
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (size_t c = 0; c < header_.size(); ++c) {
      std::string cell = c < cells.size() ? cells[c] : "";
      s += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    s += "\n";
    return s;
  };
  std::string out = rule() + line(header_) + rule();
  for (const auto& row : rows_) out += line(row);
  out += rule();
  return out;
}

namespace {
std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string TableWriter::ToCsv() const {
  std::string out;
  auto emit = [&out](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c) out += ',';
      out += CsvEscape(cells[c]);
    }
    out += '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out;
}

void TableWriter::Print(std::FILE* out) const {
  std::string s = ToAscii();
  std::fwrite(s.data(), 1, s.size(), out);
  std::fflush(out);
}

bool TableWriter::WriteCsvFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::string s = ToCsv();
  size_t written = std::fwrite(s.data(), 1, s.size(), f);
  std::fclose(f);
  return written == s.size();
}

}  // namespace zombie
