#ifndef ZOMBIE_UTIL_STATS_H_
#define ZOMBIE_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace zombie {

class Rng;

/// Streaming mean/variance accumulator (Welford). Numerically stable for
/// long reward streams.
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Standard error of the mean; 0 for fewer than two samples.
  double stderr_mean() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  void Reset();

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean over the last `window` observations; used by bandit arm statistics
/// to track non-stationary rewards (a group's usefulness decays as its good
/// items are consumed).
class WindowedMean {
 public:
  /// window == 0 means unbounded (plain mean).
  explicit WindowedMean(size_t window = 0) : window_(window) {}

  void Add(double x);
  double mean() const;
  size_t count() const { return values_.size(); }
  size_t total_count() const { return total_count_; }
  void Reset();

 private:
  size_t window_;
  std::deque<double> values_;
  double sum_ = 0.0;
  size_t total_count_ = 0;
};

/// Exponentially discounted mean: each new observation multiplies the old
/// weight by `gamma` in (0,1]. gamma == 1 is the plain mean.
class DiscountedMean {
 public:
  explicit DiscountedMean(double gamma = 1.0) : gamma_(gamma) {}

  void Add(double x);
  double mean() const;
  double weight() const { return weight_; }
  void Reset();

 private:
  double gamma_;
  double weighted_sum_ = 0.0;
  double weight_ = 0.0;
};

/// Basic descriptive statistics over a finished sample.
double Mean(const std::vector<double>& xs);
double Variance(const std::vector<double>& xs);  // n-1 denominator
double StdDev(const std::vector<double>& xs);
double Median(std::vector<double> xs);           // by value: sorts a copy
/// Linear-interpolated quantile, q in [0,1].
double Quantile(std::vector<double> xs, double q);

/// Percentile bootstrap confidence interval for the mean.
struct BootstrapCi {
  double lo = 0.0;
  double hi = 0.0;
  double point = 0.0;
};
BootstrapCi BootstrapMeanCi(const std::vector<double>& xs, double confidence,
                            int resamples, Rng* rng);

/// Welch's t-statistic for the difference of two means (does not assume
/// equal variances); positive when mean(a) > mean(b).
double WelchT(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace zombie

#endif  // ZOMBIE_UTIL_STATS_H_
