#ifndef ZOMBIE_ML_KNN_H_
#define ZOMBIE_ML_KNN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ml/dataset.h"
#include "ml/learner.h"

namespace zombie {

/// k-nearest-neighbor classifier over cosine similarity. Update() just
/// memorizes; Score() is a linear scan, so this learner is intended for
/// small training sets (tests, the custom_feature example) — not for the
/// inner loop at scale.
class KnnLearner : public Learner {
 public:
  explicit KnnLearner(size_t k = 5);

  void Update(SparseVectorView x, int32_t y) override;
  /// Score is in [-1, 1]: (positive neighbors - negative neighbors) / k,
  /// similarity-weighted.
  double Score(SparseVectorView x) const override;
  void Reset() override;
  std::unique_ptr<Learner> Clone() const override;
  std::string name() const override { return "knn"; }
  size_t num_updates() const override { return memory_.size(); }

  size_t k() const { return k_; }

 private:
  size_t k_;
  Dataset memory_;  // CSR arena: memorized examples stay contiguous
};

}  // namespace zombie

#endif  // ZOMBIE_ML_KNN_H_
