#ifndef ZOMBIE_ML_LOGISTIC_REGRESSION_H_
#define ZOMBIE_ML_LOGISTIC_REGRESSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ml/learner.h"

namespace zombie {

/// Hyperparameters for SGD logistic regression.
struct LogisticRegressionOptions {
  /// Base learning rate; per-step rate is eta0 / (1 + lambda * eta0 * t).
  double eta0 = 0.5;
  /// L2 regularization strength.
  double lambda = 1e-4;
  /// Clamp on |weights·x| before the sigmoid, for numeric safety.
  double score_clip = 30.0;
};

/// L2-regularized logistic regression trained by plain SGD with an inverse
/// scaling learning-rate schedule. Regularization uses the classic weight-
/// scaling trick so each Update() touches only the example's nonzeros.
class LogisticRegressionLearner : public Learner {
 public:
  explicit LogisticRegressionLearner(LogisticRegressionOptions options = {});

  void Update(SparseVectorView x, int32_t y) override;
  double Score(SparseVectorView x) const override;
  double PredictProbability(SparseVectorView x) const override;
  void Reset() override;
  std::unique_ptr<Learner> Clone() const override;
  std::string name() const override { return "logreg"; }
  size_t num_updates() const override { return num_updates_; }
  bool ExportWeightMagnitudes(std::vector<double>* out) const override;
  bool CompactFeatures(const std::vector<uint32_t>& old_to_new,
                       uint32_t new_dimension) override;

  const LogisticRegressionOptions& options() const { return options_; }

  /// Materialized weight for one feature (scale applied).
  double WeightAt(uint32_t index) const;
  double bias() const { return bias_; }

 private:
  double RawScore(SparseVectorView x) const;
  // Folds scale_ into weights_ when it underflows toward zero.
  void Rescale();

  LogisticRegressionOptions options_;
  std::vector<double> weights_;
  double scale_ = 1.0;
  double bias_ = 0.0;
  size_t num_updates_ = 0;
};

}  // namespace zombie

#endif  // ZOMBIE_ML_LOGISTIC_REGRESSION_H_
