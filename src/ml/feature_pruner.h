#ifndef ZOMBIE_ML_FEATURE_PRUNER_H_
#define ZOMBIE_ML_FEATURE_PRUNER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ml/dataset.h"
#include "ml/learner.h"
#include "ml/sparse_vector.h"
#include "util/status.h"

namespace zombie {

/// Knobs for online feature pruning (see FeaturePruner below). Defaults are
/// the conservative preset; AggressivePruning() trades more accuracy for
/// more speed. All decisions derive from virtual-time-visible state only
/// (activation counts of training examples + the learner's weight snapshot
/// at a holdout boundary), so a pruned run is deterministic across thread
/// counts, cache/store modes, and SIMD levels.
struct FeaturePrunerOptions {
  /// Master switch. Off (the default) must be a perfect no-op: engine
  /// output is byte-identical to a build without the pruner.
  bool enabled = false;

  /// The mask freezes at the first holdout-eval boundary at or after this
  /// many processed items (prune decisions need a trained-enough learner).
  size_t freeze_after_items = 100;

  /// Features seen fewer times than this before the freeze are never
  /// pruned: there is no evidence their weight deserves to be near zero.
  size_t min_activations = 3;

  /// Fraction of the *eligible* features (activation count >=
  /// min_activations) that is pruned, lowest |weight|/activations first.
  double prune_fraction = 0.5;

  [[nodiscard]] Status Validate() const;
};

/// Conservative preset: gated in bench_prune at >= 1.3x inner-loop wall
/// with <= 0.5% holdout-accuracy delta.
FeaturePrunerOptions ConservativePruning();

/// Aggressive preset: prunes most of the eligible space; the quality hit is
/// reported (not gated) as the other end of the E-series frontier.
FeaturePrunerOptions AggressivePruning();

/// What the freeze decided; all values are deterministic run facts.
struct PruneStats {
  /// Item count at which the mask froze (a holdout-eval boundary).
  size_t frozen_at_items = 0;
  /// Size of the remap table == highest feature id observed + 1.
  size_t input_dimension = 0;
  /// Features that met the activation floor and were therefore rankable.
  size_t eligible_features = 0;
  /// Dense dimension after compaction (kept features).
  size_t kept_features = 0;
  /// input_dimension - kept_features.
  size_t pruned_features = 0;
};

/// Online feature pruner: watches training-example activations, and at a
/// holdout-eval boundary past freeze_after_items ranks feature ids by
/// accumulated |weight| / activation count, freezes a pruning mask, and
/// compacts everything downstream through a *monotone* old-id→dense-id
/// remap table (kept ids keep their relative order; dropped ids map to
/// simd::kPrunedFeature). Monotonicity means compacted vectors stay sorted,
/// so every sparse kernel runs unchanged — just over shorter rows.
///
/// Determinism contract: ObserveExample is called once per training example
/// in pull order, and MaybeFreeze only at holdout boundaries, both on the
/// engine thread — the mask is a pure function of the example sequence and
/// the learner state, never of wall clock or thread interleaving.
/// Extraction, FeatureCache, and PersistentFeatureStore stay keyed at full
/// dimension; compaction is a view-side transform applied by
/// ExtractionService on its return path.
class FeaturePruner {
 public:
  explicit FeaturePruner(FeaturePrunerOptions options);

  const FeaturePrunerOptions& options() const { return options_; }

  /// True once the mask is frozen and compaction is active.
  bool frozen() const { return frozen_; }

  /// True when the learner turned out not to support weight export or
  /// compaction; the pruner then stays a permanent no-op.
  bool disabled() const { return disabled_; }

  /// Valid once frozen().
  const PruneStats& stats() const { return stats_; }
  const std::vector<uint32_t>& remap() const { return remap_; }

  /// Accumulates activation counts for one training example. No-op after
  /// the freeze (the mask never moves again mid-run).
  void ObserveExample(SparseVectorView x);

  /// Called at a holdout-eval boundary with the engine's item count.
  /// Freezes the mask and compacts the learner's per-feature state when the
  /// conditions above hold; returns true exactly when that happened (the
  /// caller must then compact its holdout/probe datasets too).
  bool MaybeFreeze(Learner* learner, size_t items);

  /// Compacts a vector through the frozen mask; no-op before the freeze.
  void CompactInPlace(SparseVector* x) const;

  /// Returns a compacted copy of a dataset (used for holdout/probe at the
  /// freeze). Must not be called before the freeze.
  Dataset CompactDataset(const Dataset& full) const;

 private:
  FeaturePrunerOptions options_;
  bool frozen_ = false;
  bool disabled_ = false;
  std::vector<uint32_t> activation_count_;
  std::vector<uint32_t> remap_;
  PruneStats stats_;
};

}  // namespace zombie

#endif  // ZOMBIE_ML_FEATURE_PRUNER_H_
