#ifndef ZOMBIE_ML_LEARNER_H_
#define ZOMBIE_ML_LEARNER_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ml/sparse_vector.h"

namespace zombie {

/// Binary online learner interface. Labels are 0/1.
///
/// The Zombie inner loop feeds one example at a time via Update(); the
/// quality estimator calls Score()/Predict() on the holdout. Batch training
/// is expressed as repeated Update() passes (see Evaluator::TrainEpochs).
class Learner {
 public:
  virtual ~Learner() = default;

  /// Consumes one labeled example (y in {0, 1}).
  virtual void Update(SparseVectorView x, int32_t y) = 0;

  /// Decision value; > 0 means class 1. Magnitude reflects confidence for
  /// margin-based learners, a log-odds ratio for probabilistic ones. An
  /// exact 0 (e.g. an untrained model) classifies as the negative class so
  /// that a blank model does not spuriously "recall" every positive.
  virtual double Score(SparseVectorView x) const = 0;

  /// Hard prediction in {0, 1}. Default thresholds Score at zero
  /// (ties negative).
  virtual int32_t Predict(SparseVectorView x) const {
    return Score(x) > 0.0 ? 1 : 0;
  }

  /// P(y == 1 | x) in [0, 1]. Default squashes Score through a logistic;
  /// learners with calibrated probabilities override.
  virtual double PredictProbability(SparseVectorView x) const {
    return 1.0 / (1.0 + std::exp(-Score(x)));
  }

  /// Forgets all training state.
  virtual void Reset() = 0;

  /// Fresh, untrained copy with identical hyperparameters.
  virtual std::unique_ptr<Learner> Clone() const = 0;

  /// Short identifier for tables ("nb", "logreg", ...).
  virtual std::string name() const = 0;

  /// Number of Update() calls since construction/Reset.
  virtual size_t num_updates() const = 0;

  /// Per-feature influence magnitudes for the online feature pruner
  /// (ml/feature_pruner.h): out[f] >= 0 measures how much feature f moves
  /// Score(), in whatever units the learner uses internally (|weight| for
  /// linear models, |log-odds contribution| for NB). Returns false when the
  /// learner has no per-feature notion of weight (kNN, majority) — the
  /// pruner then disables itself rather than guess. `out` is resized by the
  /// learner; ids past its size have zero influence.
  virtual bool ExportWeightMagnitudes(std::vector<double>* out) const {
    (void)out;
    return false;
  }

  /// Renumbers per-feature state through a monotone old-id→dense-id table
  /// (simd::kPrunedFeature marks dropped ids; see SparseVector::RemapThrough
  /// for the table contract). After a successful call, scoring a compacted
  /// vector must be bit-identical to scoring the original vector with the
  /// pruned features zeroed out. Returns false (leaving state untouched)
  /// when unsupported.
  virtual bool CompactFeatures(const std::vector<uint32_t>& old_to_new,
                               uint32_t new_dimension) {
    (void)old_to_new;
    (void)new_dimension;
    return false;
  }
};

/// Shared helper for CompactFeatures implementations: renumbers a dense
/// per-feature state vector through the remap table. Entries mapping to
/// simd::kPrunedFeature are dropped; the result has exactly new_dimension
/// slots (absent old entries read as 0.0).
inline void CompactDenseState(const std::vector<uint32_t>& old_to_new,
                              uint32_t new_dimension,
                              std::vector<double>* state) {
  std::vector<double> out(new_dimension, 0.0);
  const size_t n = std::min(state->size(), old_to_new.size());
  for (size_t f = 0; f < n; ++f) {
    const uint32_t dense = old_to_new[f];
    if (dense != simd::kPrunedFeature) out[dense] = (*state)[f];
  }
  state->swap(out);
}

}  // namespace zombie

#endif  // ZOMBIE_ML_LEARNER_H_
