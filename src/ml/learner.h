#ifndef ZOMBIE_ML_LEARNER_H_
#define ZOMBIE_ML_LEARNER_H_

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>

#include "ml/sparse_vector.h"

namespace zombie {

/// Binary online learner interface. Labels are 0/1.
///
/// The Zombie inner loop feeds one example at a time via Update(); the
/// quality estimator calls Score()/Predict() on the holdout. Batch training
/// is expressed as repeated Update() passes (see Evaluator::TrainEpochs).
class Learner {
 public:
  virtual ~Learner() = default;

  /// Consumes one labeled example (y in {0, 1}).
  virtual void Update(SparseVectorView x, int32_t y) = 0;

  /// Decision value; > 0 means class 1. Magnitude reflects confidence for
  /// margin-based learners, a log-odds ratio for probabilistic ones. An
  /// exact 0 (e.g. an untrained model) classifies as the negative class so
  /// that a blank model does not spuriously "recall" every positive.
  virtual double Score(SparseVectorView x) const = 0;

  /// Hard prediction in {0, 1}. Default thresholds Score at zero
  /// (ties negative).
  virtual int32_t Predict(SparseVectorView x) const {
    return Score(x) > 0.0 ? 1 : 0;
  }

  /// P(y == 1 | x) in [0, 1]. Default squashes Score through a logistic;
  /// learners with calibrated probabilities override.
  virtual double PredictProbability(SparseVectorView x) const {
    return 1.0 / (1.0 + std::exp(-Score(x)));
  }

  /// Forgets all training state.
  virtual void Reset() = 0;

  /// Fresh, untrained copy with identical hyperparameters.
  virtual std::unique_ptr<Learner> Clone() const = 0;

  /// Short identifier for tables ("nb", "logreg", ...).
  virtual std::string name() const = 0;

  /// Number of Update() calls since construction/Reset.
  virtual size_t num_updates() const = 0;
};

}  // namespace zombie

#endif  // ZOMBIE_ML_LEARNER_H_
