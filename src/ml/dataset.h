#ifndef ZOMBIE_ML_DATASET_H_
#define ZOMBIE_ML_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "ml/sparse_vector.h"

namespace zombie {

class Rng;

/// One labeled example, viewed in place. The feature vector borrows the
/// owning Dataset's CSR arena — valid until that Dataset is mutated or
/// destroyed. Cheap to copy (pointer + size + label).
struct ExampleView {
  SparseVectorView x;
  int32_t y = 0;
};

/// A flat collection of labeled examples in CSR (compressed sparse row)
/// layout: one contiguous `indices` array, one contiguous `values` array,
/// and `row_offsets` marking each example's [begin, end) span, instead of a
/// heap-allocated SparseVector per row. Rows are handed out as non-owning
/// ExampleView/SparseVectorView — iterating a holdout touches three flat
/// arrays sequentially, which is the layout the scoring kernels want.
class Dataset {
 public:
  Dataset() { row_offsets_.push_back(0); }

  /// Appends a copy of the view's entries to the arena.
  void Add(SparseVectorView x, int32_t y);
  void Add(ExampleView e) { Add(e.x, e.y); }

  /// Pre-sizes the arena (optional; Add grows as needed).
  void Reserve(size_t rows, size_t nnz);

  size_t size() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }

  /// Total number of stored (index, value) entries across all rows.
  size_t num_entries() const { return indices_.size(); }

  ExampleView example(size_t i) const {
    const size_t begin = row_offsets_[i];
    return ExampleView{
        SparseVectorView(indices_.data() + begin, values_.data() + begin,
                         row_offsets_[i + 1] - begin),
        labels_[i]};
  }
  int32_t label(size_t i) const { return labels_[i]; }

  /// Iteration yields ExampleView by value; `examples()` keeps the
  /// pre-CSR call-site spelling `for (ExampleView e : ds.examples())`.
  class Iterator {
   public:
    Iterator(const Dataset* ds, size_t i) : ds_(ds), i_(i) {}
    ExampleView operator*() const { return ds_->example(i_); }
    Iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator==(const Iterator& o) const { return i_ == o.i_; }
    bool operator!=(const Iterator& o) const { return i_ != o.i_; }

   private:
    const Dataset* ds_;
    size_t i_;
  };
  Iterator begin() const { return Iterator(this, 0); }
  Iterator end() const { return Iterator(this, size()); }
  const Dataset& examples() const { return *this; }

  /// Number of examples with y == 1.
  size_t num_positive() const;

  /// Fraction of examples with y == 1 (0 for an empty set).
  double positive_fraction() const;

  /// Shuffles example order in place. Consumes exactly the same Rng draws
  /// as the pre-CSR vector shuffle (Fisher–Yates over `size()` elements),
  /// so seeded runs reproduce the old ordering bit-for-bit.
  void Shuffle(Rng* rng);

  /// Splits into train/test: the first `test_fraction` of a shuffled copy
  /// goes to test. Deterministic given the rng.
  std::pair<Dataset, Dataset> SplitTrainTest(double test_fraction,
                                             Rng* rng) const;

  /// Splits into k folds of near-equal size (for cross-validation).
  std::vector<Dataset> SplitFolds(size_t k, Rng* rng) const;

 private:
  /// Rebuilds the arena with rows in `order` (a permutation of [0, size)).
  void Permute(const std::vector<size_t>& order);

  std::vector<uint32_t> indices_;
  std::vector<double> values_;
  std::vector<size_t> row_offsets_;  // size() + 1 entries; [0] == 0
  std::vector<int32_t> labels_;
};

}  // namespace zombie

#endif  // ZOMBIE_ML_DATASET_H_
