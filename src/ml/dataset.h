#ifndef ZOMBIE_ML_DATASET_H_
#define ZOMBIE_ML_DATASET_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "ml/sparse_vector.h"

namespace zombie {

class Rng;

/// One labeled training/evaluation example.
struct Example {
  SparseVector x;
  int32_t y = 0;
};

/// A flat collection of labeled examples.
class Dataset {
 public:
  Dataset() = default;

  void Add(SparseVector x, int32_t y) {
    examples_.push_back(Example{std::move(x), y});
  }
  void Add(Example e) { examples_.push_back(std::move(e)); }

  size_t size() const { return examples_.size(); }
  bool empty() const { return examples_.empty(); }

  const Example& example(size_t i) const { return examples_[i]; }
  const std::vector<Example>& examples() const { return examples_; }

  /// Number of examples with y == 1.
  size_t num_positive() const;

  /// Fraction of examples with y == 1 (0 for an empty set).
  double positive_fraction() const;

  /// Shuffles example order in place.
  void Shuffle(Rng* rng);

  /// Splits into train/test: the first `test_fraction` of a shuffled copy
  /// goes to test. Deterministic given the rng.
  std::pair<Dataset, Dataset> SplitTrainTest(double test_fraction,
                                             Rng* rng) const;

  /// Splits into k folds of near-equal size (for cross-validation).
  std::vector<Dataset> SplitFolds(size_t k, Rng* rng) const;

 private:
  std::vector<Example> examples_;
};

}  // namespace zombie

#endif  // ZOMBIE_ML_DATASET_H_
