#include "ml/evaluator.h"

#include <cmath>

#include "util/logging.h"
#include "util/stats.h"

namespace zombie {

void TrainEpochs(Learner* learner, const Dataset& train, size_t epochs,
                 Rng* rng) {
  std::vector<size_t> order(train.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (size_t e = 0; e < epochs; ++e) {
    rng->Shuffle(&order);
    for (size_t idx : order) {
      ExampleView ex = train.example(idx);
      learner->Update(ex.x, ex.y);
    }
  }
}

HoldoutEvaluator::HoldoutEvaluator(Dataset holdout)
    : holdout_(std::move(holdout)) {
  ZCHECK(!holdout_.empty()) << "holdout must be non-empty";
}

BinaryMetrics HoldoutEvaluator::Evaluate(const Learner& learner,
                                         ThreadPool* pool) const {
  return EvaluateLearner(learner, holdout_, pool);
}

double HoldoutEvaluator::Quality(const Learner& learner,
                                 QualityMetric metric) const {
  return QualityOf(Evaluate(learner), metric);
}

CrossValidationResult CrossValidate(const Learner& prototype,
                                    const Dataset& data, size_t folds,
                                    size_t epochs, QualityMetric metric,
                                    Rng* rng) {
  ZCHECK_GE(folds, 2u);
  std::vector<Dataset> fold_sets = data.SplitFolds(folds, rng);
  CrossValidationResult result;
  for (size_t held = 0; held < folds; ++held) {
    std::unique_ptr<Learner> learner = prototype.Clone();
    Dataset train;
    for (size_t f = 0; f < folds; ++f) {
      if (f == held) continue;
      for (ExampleView e : fold_sets[f].examples()) train.Add(e);
    }
    TrainEpochs(learner.get(), train, epochs, rng);
    BinaryMetrics m = EvaluateLearner(*learner, fold_sets[held]);
    result.fold_qualities.push_back(QualityOf(m, metric));
  }
  result.mean_quality = Mean(result.fold_qualities);
  result.stddev_quality = StdDev(result.fold_qualities);
  return result;
}

}  // namespace zombie
