#ifndef ZOMBIE_ML_EVALUATOR_H_
#define ZOMBIE_ML_EVALUATOR_H_

#include <cstddef>
#include <memory>

#include "ml/dataset.h"
#include "ml/learner.h"
#include "ml/metrics.h"
#include "util/random.h"

namespace zombie {

/// Streams a dataset through a learner for `epochs` passes, shuffling each
/// pass. This is "batch training" for our online learners.
void TrainEpochs(Learner* learner, const Dataset& train, size_t epochs,
                 Rng* rng);

/// Quality estimation against a fixed labeled holdout set — the paper's
/// inner-loop quality signal. The holdout is featurized once up front (the
/// engine accounts for that one-time cost) and reused for every evaluation.
class HoldoutEvaluator {
 public:
  explicit HoldoutEvaluator(Dataset holdout);

  /// Full metrics of the learner on the holdout. `pool` optionally shards
  /// the scoring pass (see EvaluateLearner's determinism contract: results
  /// are byte-identical to the serial path at any thread count).
  BinaryMetrics Evaluate(const Learner& learner,
                         ThreadPool* pool = nullptr) const;

  /// Just the selected quality scalar.
  double Quality(const Learner& learner, QualityMetric metric) const;

  const Dataset& holdout() const { return holdout_; }
  size_t size() const { return holdout_.size(); }

 private:
  Dataset holdout_;
};

/// Result of one cross-validation run.
struct CrossValidationResult {
  double mean_quality = 0.0;
  double stddev_quality = 0.0;
  std::vector<double> fold_qualities;
};

/// k-fold cross-validation: trains a fresh clone of `prototype` on k-1
/// folds (epochs passes each) and evaluates on the held-out fold.
CrossValidationResult CrossValidate(const Learner& prototype,
                                    const Dataset& data, size_t folds,
                                    size_t epochs, QualityMetric metric,
                                    Rng* rng);

}  // namespace zombie

#endif  // ZOMBIE_ML_EVALUATOR_H_
