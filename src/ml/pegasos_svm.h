#ifndef ZOMBIE_ML_PEGASOS_SVM_H_
#define ZOMBIE_ML_PEGASOS_SVM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ml/learner.h"

namespace zombie {

/// Hyperparameters for the Pegasos linear SVM.
struct PegasosOptions {
  /// Regularization strength; the Pegasos step size is 1 / (lambda * t).
  double lambda = 1e-4;
};

/// Linear SVM trained with the Pegasos stochastic subgradient method
/// (Shalev-Shwartz et al.). Uses the weight-scaling trick so each Update()
/// is O(nnz). Scores are unnormalized margins.
class PegasosSvmLearner : public Learner {
 public:
  explicit PegasosSvmLearner(PegasosOptions options = {});

  void Update(SparseVectorView x, int32_t y) override;
  double Score(SparseVectorView x) const override;
  void Reset() override;
  std::unique_ptr<Learner> Clone() const override;
  std::string name() const override { return "svm"; }
  size_t num_updates() const override { return num_updates_; }
  bool ExportWeightMagnitudes(std::vector<double>* out) const override;
  bool CompactFeatures(const std::vector<uint32_t>& old_to_new,
                       uint32_t new_dimension) override;

 private:
  void Rescale();

  PegasosOptions options_;
  std::vector<double> weights_;
  double scale_ = 1.0;
  double bias_ = 0.0;
  size_t num_updates_ = 0;
};

}  // namespace zombie

#endif  // ZOMBIE_ML_PEGASOS_SVM_H_
