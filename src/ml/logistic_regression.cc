#include "ml/logistic_regression.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace zombie {

LogisticRegressionLearner::LogisticRegressionLearner(
    LogisticRegressionOptions options)
    : options_(options) {
  ZCHECK_GT(options.eta0, 0.0);
  ZCHECK_GE(options.lambda, 0.0);
}

double LogisticRegressionLearner::RawScore(SparseVectorView x) const {
  double s = scale_ * x.Dot(weights_) + bias_;
  return std::clamp(s, -options_.score_clip, options_.score_clip);
}

double LogisticRegressionLearner::Score(SparseVectorView x) const {
  return RawScore(x);
}

double LogisticRegressionLearner::PredictProbability(
    SparseVectorView x) const {
  return 1.0 / (1.0 + std::exp(-RawScore(x)));
}

void LogisticRegressionLearner::Rescale() {
  if (scale_ > 1e-9) return;
  for (double& w : weights_) w *= scale_;
  scale_ = 1.0;
}

void LogisticRegressionLearner::Update(SparseVectorView x, int32_t y) {
  ZCHECK(y == 0 || y == 1) << "binary labels required, got " << y;
  ++num_updates_;
  double t = static_cast<double>(num_updates_);
  double eta =
      options_.eta0 / (1.0 + options_.lambda * options_.eta0 * t);

  double p = 1.0 / (1.0 + std::exp(-RawScore(x)));
  double g = static_cast<double>(y) - p;  // gradient of log-likelihood

  // L2 shrink via the scale factor: w <- (1 - eta*lambda) * w.
  if (options_.lambda > 0.0) {
    scale_ *= (1.0 - eta * options_.lambda);
    if (scale_ <= 0.0) scale_ = 1e-12;
    Rescale();
  }

  // Gradient step touches only the example's nonzeros. Because the live
  // weights are scale_*weights_, the raw update is eta*g/scale_.
  if (weights_.size() < x.dimension()) weights_.resize(x.dimension(), 0.0);
  double step = eta * g / scale_;
  for (size_t i = 0; i < x.num_nonzero(); ++i) {
    weights_[x.index_at(i)] += step * x.value_at(i);
  }
  bias_ += eta * g;
}

double LogisticRegressionLearner::WeightAt(uint32_t index) const {
  if (index >= weights_.size()) return 0.0;
  return scale_ * weights_[index];
}

void LogisticRegressionLearner::Reset() {
  weights_.clear();
  scale_ = 1.0;
  bias_ = 0.0;
  num_updates_ = 0;
}

std::unique_ptr<Learner> LogisticRegressionLearner::Clone() const {
  return std::make_unique<LogisticRegressionLearner>(options_);
}

bool LogisticRegressionLearner::ExportWeightMagnitudes(
    std::vector<double>* out) const {
  out->resize(weights_.size());
  for (size_t f = 0; f < weights_.size(); ++f) {
    (*out)[f] = std::abs(scale_ * weights_[f]);
  }
  return true;
}

bool LogisticRegressionLearner::CompactFeatures(
    const std::vector<uint32_t>& old_to_new, uint32_t new_dimension) {
  // scale_ and bias_ are untouched: the live weight of a kept feature is
  // still scale_ * weights_[dense id], so compacted scores match scoring
  // the original vector with pruned features zeroed.
  CompactDenseState(old_to_new, new_dimension, &weights_);
  return true;
}

}  // namespace zombie
