#ifndef ZOMBIE_ML_METRICS_H_
#define ZOMBIE_ML_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ml/dataset.h"
#include "ml/learner.h"

namespace zombie {

class ThreadPool;

/// Binary confusion counts, positive class == 1.
struct Confusion {
  int64_t tp = 0;
  int64_t fp = 0;
  int64_t tn = 0;
  int64_t fn = 0;

  int64_t total() const { return tp + fp + tn + fn; }
  void Add(int32_t truth, int32_t predicted);
};

/// Derived metrics; degenerate denominators yield 0 (not NaN) so learning
/// curves start at a defined value.
double Accuracy(const Confusion& c);
double Precision(const Confusion& c);
double Recall(const Confusion& c);
double F1(const Confusion& c);

/// Quality score bundle reported by evaluators.
struct BinaryMetrics {
  Confusion confusion;
  double accuracy = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double auc = 0.0;

  std::string ToString() const;
};

/// Which scalar a run optimizes/reports as "quality". The paper's tasks are
/// rare-class, so F1 of the positive class is the default.
enum class QualityMetric { kF1, kAccuracy, kAuc };

const char* QualityMetricName(QualityMetric metric);

/// Extracts the selected scalar from a metrics bundle.
double QualityOf(const BinaryMetrics& m, QualityMetric metric);

/// Scores every example with `learner` and computes the full bundle.
/// AUC is the rank-based (Mann–Whitney) estimate over Score() values; it is
/// 0 when either class is absent from `data`.
///
/// Determinism contract for `pool`: when non-null, scoring is sharded over
/// fixed index ranges and each shard writes its own disjoint slots of a
/// pre-sized score vector; every reduction (confusion, threshold sweep,
/// AUC) then runs serially over that vector. The scores — and therefore the
/// returned metrics — are byte-identical to the serial path at any thread
/// count, by construction rather than by tolerance. Score() must be const
/// and thread-safe (all learners here are: scoring never mutates).
BinaryMetrics EvaluateLearner(const Learner& learner, const Dataset& data,
                              ThreadPool* pool = nullptr);

/// AUC from raw (score, label) pairs; ties get midrank credit.
double AucFromScores(const std::vector<double>& scores,
                     const std::vector<int32_t>& labels);

/// Like EvaluateLearner, but instead of thresholding scores at 0, sweeps
/// every distinct score as the decision threshold and reports the metrics
/// at the F1-maximizing one (`best_threshold` receives it when non-null).
/// This removes class-prior miscalibration from the quality signal —
/// selection skews the training class balance, which shifts a generative
/// learner's operating point without changing its ranking quality.
BinaryMetrics EvaluateLearnerTuned(const Learner& learner,
                                   const Dataset& data,
                                   double* best_threshold = nullptr,
                                   ThreadPool* pool = nullptr);

}  // namespace zombie

#endif  // ZOMBIE_ML_METRICS_H_
