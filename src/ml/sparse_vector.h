#ifndef ZOMBIE_ML_SPARSE_VECTOR_H_
#define ZOMBIE_ML_SPARSE_VECTOR_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ml/simd/sparse_kernels.h"
#include "ml/simd/sparse_kernels_scalar.h"

namespace zombie {

/// Non-owning view of a sparse feature vector: parallel (index, value)
/// spans sorted by index with no duplicates and no explicit zeros. This is
/// the hot-path representation — learners and evaluators consume views, so
/// a row of a CSR-backed Dataset flows into a kernel without copying or
/// allocating. A SparseVector (the owning type below) converts implicitly.
///
/// Lifetime rule: a view borrows storage. Views into a Dataset are valid
/// until the Dataset is mutated (Add/Shuffle) or destroyed; views of a
/// SparseVector follow the vector they were taken from. Kernels never
/// retain views past the call.
class SparseVectorView {
 public:
  constexpr SparseVectorView() = default;
  SparseVectorView(const uint32_t* indices, const double* values, size_t size)
      : indices_(indices), values_(values), size_(size) {}

  size_t num_nonzero() const { return size_; }
  bool empty() const { return size_ == 0; }

  uint32_t index_at(size_t i) const { return indices_[i]; }
  double value_at(size_t i) const { return values_[i]; }

  const uint32_t* indices_data() const { return indices_; }
  const double* values_data() const { return values_; }

  /// Largest index + 1, or 0 when empty. Returns size_t: an entry at index
  /// UINT32_MAX has dimension 2^32, which would wrap to 0 in uint32_t and
  /// make AddScaledTo skip its resize and write out of bounds.
  size_t dimension() const {
    return size_ == 0 ? 0 : static_cast<size_t>(indices_[size_ - 1]) + 1;
  }

  /// Value at a feature index (0.0 if absent); binary search.
  double Get(uint32_t index) const;

  // The four hot kernels below are defined inline at the bottom of this
  // header. Raw-pointer kernels on a view are inlinable at every call site
  // — unlike the vector-member originals, which always cost an opaque
  // cross-TU call — and inlining is worth more than any in-kernel trick on
  // these loops (it removes the by-value view's stack round trip and lets
  // the compiler specialize on the caller's loop).

  /// Dot product against a dense weight vector; indices beyond the dense
  /// size contribute zero.
  inline double Dot(const std::vector<double>& dense) const;

  /// Dot product with another sparse vector (run-skipping merge join).
  inline double Dot(SparseVectorView other) const;

  /// dense[i] += scale * this[i]; grows `dense` as needed.
  inline void AddScaledTo(double scale, std::vector<double>* dense) const;

  inline double L2Norm() const;
  inline double L1Norm() const;

  /// Squared Euclidean distance to another sparse vector.
  inline double SquaredDistance(SparseVectorView other) const;

  /// Cosine similarity in [-1, 1]; 0 if either vector is empty/zero.
  double CosineSimilarity(SparseVectorView other) const;

  /// Content equality (same indices and values).
  bool operator==(SparseVectorView other) const;
  bool operator!=(SparseVectorView other) const { return !(*this == other); }

  /// Debug rendering like "{3:1.0, 17:0.5}".
  std::string ToString() const;

 private:
  const uint32_t* indices_ = nullptr;
  const double* values_ = nullptr;
  size_t size_ = 0;
};

/// Owning sparse feature vector with the same invariants and kernel API as
/// SparseVectorView (every const kernel delegates to the view). This is the
/// feature representation flowing out of the feature pipeline; bulk storage
/// (holdout, probe, kNN memory) lives in the CSR-backed Dataset instead of
/// per-row SparseVectors.
class SparseVector {
 public:
  SparseVector() = default;

  /// Builds from possibly unsorted/duplicated pairs; duplicates are summed
  /// and zero-valued entries dropped.
  static SparseVector FromPairs(
      std::vector<std::pair<uint32_t, double>> pairs);

  /// Copies a view into owned storage.
  static SparseVector FromView(SparseVectorView view);

  /// Appends an entry; index must be strictly greater than the last index
  /// (checked). Fast path for already-ordered construction.
  void PushBack(uint32_t index, double value);

  /// The non-owning view of this vector (valid while *this is alive and
  /// unmodified). The implicit conversion lets owning vectors flow into
  /// view-taking kernels and learners without ceremony.
  SparseVectorView view() const {
    return SparseVectorView(indices_.data(), values_.data(), indices_.size());
  }
  operator SparseVectorView() const { return view(); }  // NOLINT

  size_t num_nonzero() const { return indices_.size(); }
  bool empty() const { return indices_.empty(); }

  const std::vector<uint32_t>& indices() const { return indices_; }
  const std::vector<double>& values() const { return values_; }

  uint32_t index_at(size_t i) const { return indices_[i]; }
  double value_at(size_t i) const { return values_[i]; }

  /// See SparseVectorView::dimension() for the size_t rationale.
  size_t dimension() const { return view().dimension(); }

  double Get(uint32_t index) const { return view().Get(index); }
  double Dot(const std::vector<double>& dense) const {
    return view().Dot(dense);
  }
  double Dot(SparseVectorView other) const { return view().Dot(other); }
  void AddScaledTo(double scale, std::vector<double>* dense) const {
    view().AddScaledTo(scale, dense);
  }

  /// Multiplies all values in place.
  void Scale(double factor);

  /// Compacts this vector in place through a monotone old-id→dense-id remap
  /// table (the RemapSparseView kernel): entries mapping to
  /// simd::kPrunedFeature and entries at ids >= `table_size` are dropped,
  /// kept entries are renumbered to their dense ids. The table must be
  /// monotone over kept ids so the result stays sorted.
  void RemapThrough(const uint32_t* old_to_new, size_t table_size);

  double L2Norm() const { return view().L2Norm(); }
  double L1Norm() const { return view().L1Norm(); }
  double SquaredDistance(SparseVectorView other) const {
    return view().SquaredDistance(other);
  }
  double CosineSimilarity(SparseVectorView other) const {
    return view().CosineSimilarity(other);
  }

  bool operator==(const SparseVector& other) const {
    return indices_ == other.indices_ && values_ == other.values_;
  }

  std::string ToString() const { return view().ToString(); }

 private:
  std::vector<uint32_t> indices_;
  std::vector<double> values_;
};

// ---------------------------------------------------------------------------
// Hot-path kernels (inline wrappers). Every kernel must produce bit-identical
// results to the straightforward scalar merge-join it replaced — tests assert
// A/B equality through whole engine runs — so floating-point additions may
// only happen for the same operands in the same order as the original loops.
// (`sum += cond ? x : 0.0` is NOT equivalent: adding +0.0 to a -0.0
// accumulator flips its sign bit.) The rewrites therefore move *index*
// bookkeeping, never accumulation.
//
// The loop bodies live in ml/simd/sparse_kernels_scalar.h; when the binary
// is built with ZOMBIE_SIMD the wrappers route large inputs through the
// runtime ISA dispatch table (ml/simd/sparse_kernels.h), whose AVX2/AVX-512
// entries are bit-identical to scalar by the same contract. Small inputs
// keep the directly-inlined scalar loop: the function-pointer hop costs more
// than SIMD saves there, and since both paths agree bit-for-bit the
// threshold is unobservable in results.
// ---------------------------------------------------------------------------

inline double SparseVectorView::Dot(const std::vector<double>& dense) const {
  // Indices are sorted, so "break at the first out-of-range index" is the
  // same as hoisting the bound check out of the loop: find the cutoff once,
  // then run a tight two-load multiply-accumulate with no branch in the
  // body.
  size_t limit = size_;
  if (dense.size() <= static_cast<size_t>(UINT32_MAX)) {
    const uint32_t bound = static_cast<uint32_t>(dense.size());
    limit = static_cast<size_t>(
        std::lower_bound(indices_, indices_ + size_, bound) - indices_);
  }
#if defined(ZOMBIE_SIMD_ENABLED)
  // Per-kernel cutoff: the bench_micro nnz sweep found no size at which the
  // gathered dot beats scalar, so this currently routes every row to the
  // scalar loop (see the kSimdMinEntriesDotSparseDense note).
  if (limit >= simd::kSimdMinEntriesDotSparseDense) {
    return simd::ActiveKernels().dot_sparse_dense(indices_, values_, limit,
                                                  dense.data());
  }
#endif
  return simd::ScalarDotSparseDense(indices_, values_, limit, dense.data());
}

inline double SparseVectorView::Dot(SparseVectorView other) const {
  if (size_ == 0 || other.size_ == 0) return 0.0;
#if defined(ZOMBIE_SIMD_ENABLED)
  if (size_ + other.size_ >= 2 * simd::kSimdMinEntries) {
    return simd::ActiveKernels().dot_sparse_sparse(
        indices_, values_, size_, other.indices_, other.values_, other.size_);
  }
#endif
  return simd::ScalarDotSparseSparse(indices_, values_, size_, other.indices_,
                                     other.values_, other.size_);
}

inline void SparseVectorView::AddScaledTo(double scale,
                                          std::vector<double>* dense) const {
  if (size_ == 0) return;
  if (dense->size() < dimension()) dense->resize(dimension(), 0.0);
#if defined(ZOMBIE_SIMD_ENABLED)
  if (size_ >= simd::kSimdMinEntries) {
    simd::ActiveKernels().add_scaled_to(indices_, values_, size_, scale,
                                        dense->data());
    return;
  }
#endif
  simd::ScalarAddScaledTo(indices_, values_, size_, scale, dense->data());
}

inline double SparseVectorView::L2Norm() const {
  double s = 0.0;
  for (size_t i = 0; i < size_; ++i) s += values_[i] * values_[i];
  return std::sqrt(s);
}

inline double SparseVectorView::L1Norm() const {
  double s = 0.0;
  for (size_t i = 0; i < size_; ++i) s += std::abs(values_[i]);
  return s;
}

inline double SparseVectorView::SquaredDistance(SparseVectorView other) const {
  // Merge with identical accumulation order to the classic three-way merge;
  // see ScalarSquaredDistance for the loop-shape rationale. (Unlike Dot,
  // every element accumulates, so there is no run to skip; SIMD levels can
  // still vectorize the independent squares between the ordered adds.)
#if defined(ZOMBIE_SIMD_ENABLED)
  if (size_ + other.size_ >= 2 * simd::kSimdMinEntries) {
    return simd::ActiveKernels().squared_distance(
        indices_, values_, size_, other.indices_, other.values_, other.size_);
  }
#endif
  return simd::ScalarSquaredDistance(indices_, values_, size_, other.indices_,
                                     other.values_, other.size_);
}

}  // namespace zombie

#endif  // ZOMBIE_ML_SPARSE_VECTOR_H_
