#ifndef ZOMBIE_ML_SPARSE_VECTOR_H_
#define ZOMBIE_ML_SPARSE_VECTOR_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace zombie {

/// Immutable-ish sparse feature vector: parallel (index, value) arrays kept
/// sorted by index with no duplicates and no explicit zeros. This is the
/// feature representation flowing from the feature pipeline into learners.
class SparseVector {
 public:
  SparseVector() = default;

  /// Builds from possibly unsorted/duplicated pairs; duplicates are summed
  /// and zero-valued entries dropped.
  static SparseVector FromPairs(
      std::vector<std::pair<uint32_t, double>> pairs);

  /// Appends an entry; index must be strictly greater than the last index
  /// (checked). Fast path for already-ordered construction.
  void PushBack(uint32_t index, double value);

  size_t num_nonzero() const { return indices_.size(); }
  bool empty() const { return indices_.empty(); }

  const std::vector<uint32_t>& indices() const { return indices_; }
  const std::vector<double>& values() const { return values_; }

  uint32_t index_at(size_t i) const { return indices_[i]; }
  double value_at(size_t i) const { return values_[i]; }

  /// Largest index + 1, or 0 when empty. Returns size_t: an entry at index
  /// UINT32_MAX has dimension 2^32, which would wrap to 0 in uint32_t and
  /// make AddScaledTo skip its resize and write out of bounds.
  size_t dimension() const {
    return indices_.empty() ? 0 : static_cast<size_t>(indices_.back()) + 1;
  }

  /// Value at a feature index (0.0 if absent); binary search.
  double Get(uint32_t index) const;

  /// Dot product against a dense weight vector; indices beyond the dense
  /// size contribute zero.
  double Dot(const std::vector<double>& dense) const;

  /// Dot product with another sparse vector (merge join).
  double Dot(const SparseVector& other) const;

  /// dense[i] += scale * this[i]; grows `dense` as needed.
  void AddScaledTo(double scale, std::vector<double>* dense) const;

  /// Multiplies all values in place.
  void Scale(double factor);

  double L2Norm() const;
  double L1Norm() const;

  /// Squared Euclidean distance to another sparse vector.
  double SquaredDistance(const SparseVector& other) const;

  /// Cosine similarity in [-1, 1]; 0 if either vector is empty/zero.
  double CosineSimilarity(const SparseVector& other) const;

  bool operator==(const SparseVector& other) const {
    return indices_ == other.indices_ && values_ == other.values_;
  }

  /// Debug rendering like "{3:1.0, 17:0.5}".
  std::string ToString() const;

 private:
  std::vector<uint32_t> indices_;
  std::vector<double> values_;
};

}  // namespace zombie

#endif  // ZOMBIE_ML_SPARSE_VECTOR_H_
