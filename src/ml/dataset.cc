#include "ml/dataset.h"

#include "util/logging.h"
#include "util/random.h"

namespace zombie {

size_t Dataset::num_positive() const {
  size_t n = 0;
  for (const auto& e : examples_) {
    if (e.y == 1) ++n;
  }
  return n;
}

double Dataset::positive_fraction() const {
  if (examples_.empty()) return 0.0;
  return static_cast<double>(num_positive()) /
         static_cast<double>(examples_.size());
}

void Dataset::Shuffle(Rng* rng) { rng->Shuffle(&examples_); }

std::pair<Dataset, Dataset> Dataset::SplitTrainTest(double test_fraction,
                                                    Rng* rng) const {
  ZCHECK_GE(test_fraction, 0.0);
  ZCHECK_LE(test_fraction, 1.0);
  std::vector<size_t> order(examples_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng->Shuffle(&order);
  size_t test_size =
      static_cast<size_t>(test_fraction * static_cast<double>(order.size()));
  Dataset train;
  Dataset test;
  for (size_t i = 0; i < order.size(); ++i) {
    const Example& e = examples_[order[i]];
    if (i < test_size) {
      test.Add(e);
    } else {
      train.Add(e);
    }
  }
  return {std::move(train), std::move(test)};
}

std::vector<Dataset> Dataset::SplitFolds(size_t k, Rng* rng) const {
  ZCHECK_GE(k, 1u);
  std::vector<size_t> order(examples_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng->Shuffle(&order);
  std::vector<Dataset> folds(k);
  for (size_t i = 0; i < order.size(); ++i) {
    folds[i % k].Add(examples_[order[i]]);
  }
  return folds;
}

}  // namespace zombie
