#include "ml/dataset.h"

#include "util/logging.h"
#include "util/random.h"

namespace zombie {

void Dataset::Add(SparseVectorView x, int32_t y) {
  const size_t n = x.num_nonzero();
  indices_.insert(indices_.end(), x.indices_data(), x.indices_data() + n);
  values_.insert(values_.end(), x.values_data(), x.values_data() + n);
  row_offsets_.push_back(indices_.size());
  labels_.push_back(y);
}

void Dataset::Reserve(size_t rows, size_t nnz) {
  indices_.reserve(nnz);
  values_.reserve(nnz);
  row_offsets_.reserve(rows + 1);
  labels_.reserve(rows);
}

size_t Dataset::num_positive() const {
  size_t n = 0;
  for (int32_t y : labels_) {
    if (y == 1) ++n;
  }
  return n;
}

double Dataset::positive_fraction() const {
  if (labels_.empty()) return 0.0;
  return static_cast<double>(num_positive()) /
         static_cast<double>(labels_.size());
}

void Dataset::Permute(const std::vector<size_t>& order) {
  std::vector<uint32_t> indices;
  std::vector<double> values;
  std::vector<size_t> row_offsets;
  std::vector<int32_t> labels;
  indices.reserve(indices_.size());
  values.reserve(values_.size());
  row_offsets.reserve(row_offsets_.size());
  labels.reserve(labels_.size());
  row_offsets.push_back(0);
  for (size_t row : order) {
    const size_t begin = row_offsets_[row];
    const size_t end = row_offsets_[row + 1];
    indices.insert(indices.end(), indices_.begin() + static_cast<ptrdiff_t>(begin),
                   indices_.begin() + static_cast<ptrdiff_t>(end));
    values.insert(values.end(), values_.begin() + static_cast<ptrdiff_t>(begin),
                  values_.begin() + static_cast<ptrdiff_t>(end));
    row_offsets.push_back(indices.size());
    labels.push_back(labels_[row]);
  }
  indices_ = std::move(indices);
  values_ = std::move(values);
  row_offsets_ = std::move(row_offsets);
  labels_ = std::move(labels);
}

void Dataset::Shuffle(Rng* rng) {
  // Shuffle an index permutation, not the arena: Rng::Shuffle's draw count
  // depends only on element count, so this consumes the identical random
  // stream the old vector<Example> shuffle did and lands on the same order.
  std::vector<size_t> order(size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng->Shuffle(&order);
  Permute(order);
}

std::pair<Dataset, Dataset> Dataset::SplitTrainTest(double test_fraction,
                                                    Rng* rng) const {
  ZCHECK_GE(test_fraction, 0.0);
  ZCHECK_LE(test_fraction, 1.0);
  std::vector<size_t> order(size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng->Shuffle(&order);
  size_t test_size =
      static_cast<size_t>(test_fraction * static_cast<double>(order.size()));
  Dataset train;
  Dataset test;
  for (size_t i = 0; i < order.size(); ++i) {
    if (i < test_size) {
      test.Add(example(order[i]));
    } else {
      train.Add(example(order[i]));
    }
  }
  return {std::move(train), std::move(test)};
}

std::vector<Dataset> Dataset::SplitFolds(size_t k, Rng* rng) const {
  ZCHECK_GE(k, 1u);
  std::vector<size_t> order(size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng->Shuffle(&order);
  std::vector<Dataset> folds(k);
  for (size_t i = 0; i < order.size(); ++i) {
    folds[i % k].Add(example(order[i]));
  }
  return folds;
}

}  // namespace zombie
