#include "ml/pegasos_svm.h"

#include "util/logging.h"

namespace zombie {

PegasosSvmLearner::PegasosSvmLearner(PegasosOptions options)
    : options_(options) {
  ZCHECK_GT(options.lambda, 0.0);
}

double PegasosSvmLearner::Score(SparseVectorView x) const {
  return scale_ * x.Dot(weights_) + bias_;
}

void PegasosSvmLearner::Rescale() {
  if (scale_ > 1e-9) return;
  for (double& w : weights_) w *= scale_;
  scale_ = 1.0;
}

void PegasosSvmLearner::Update(SparseVectorView x, int32_t y) {
  ZCHECK(y == 0 || y == 1) << "binary labels required, got " << y;
  ++num_updates_;
  // t+1 avoids the degenerate first step where (1 - eta*lambda) would be 0.
  double t = static_cast<double>(num_updates_) + 1.0;
  double eta = 1.0 / (options_.lambda * t);
  double yy = y == 1 ? 1.0 : -1.0;

  double margin = yy * Score(x);

  // w <- (1 - eta*lambda) w  [+ eta*y*x when the margin is violated].
  scale_ *= (1.0 - eta * options_.lambda);
  if (scale_ <= 0.0) scale_ = 1e-12;
  Rescale();

  if (margin < 1.0) {
    if (weights_.size() < x.dimension()) weights_.resize(x.dimension(), 0.0);
    double step = eta * yy / scale_;
    for (size_t i = 0; i < x.num_nonzero(); ++i) {
      weights_[x.index_at(i)] += step * x.value_at(i);
    }
    bias_ += eta * yy;
  }
}

void PegasosSvmLearner::Reset() {
  weights_.clear();
  scale_ = 1.0;
  bias_ = 0.0;
  num_updates_ = 0;
}

std::unique_ptr<Learner> PegasosSvmLearner::Clone() const {
  return std::make_unique<PegasosSvmLearner>(options_);
}

bool PegasosSvmLearner::ExportWeightMagnitudes(
    std::vector<double>* out) const {
  out->resize(weights_.size());
  for (size_t f = 0; f < weights_.size(); ++f) {
    (*out)[f] = std::abs(scale_ * weights_[f]);
  }
  return true;
}

bool PegasosSvmLearner::CompactFeatures(
    const std::vector<uint32_t>& old_to_new, uint32_t new_dimension) {
  // scale_ and bias_ are untouched (see the logreg note).
  CompactDenseState(old_to_new, new_dimension, &weights_);
  return true;
}

}  // namespace zombie
