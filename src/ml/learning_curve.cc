#include "ml/learning_curve.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace zombie {

void LearningCurve::Add(CurvePoint point) {
  if (!points_.empty()) {
    ZCHECK_GE(point.items_processed, points_.back().items_processed);
    ZCHECK_GE(point.virtual_micros, points_.back().virtual_micros);
  }
  points_.push_back(std::move(point));
}

double LearningCurve::FinalQuality() const {
  return points_.empty() ? 0.0 : points_.back().quality;
}

double LearningCurve::PeakQuality() const {
  double peak = 0.0;
  for (const auto& p : points_) peak = std::max(peak, p.quality);
  return peak;
}

int64_t LearningCurve::TimeToQuality(double target) const {
  for (const auto& p : points_) {
    if (p.quality >= target) return p.virtual_micros;
  }
  return -1;
}

int64_t LearningCurve::ItemsToQuality(double target) const {
  for (const auto& p : points_) {
    if (p.quality >= target) return static_cast<int64_t>(p.items_processed);
  }
  return -1;
}

double LearningCurve::NormalizedAucItems() const {
  if (points_.size() < 2) return FinalQuality();
  double area = 0.0;
  for (size_t i = 1; i < points_.size(); ++i) {
    double dx = static_cast<double>(points_[i].items_processed -
                                    points_[i - 1].items_processed);
    area += dx * (points_[i].quality + points_[i - 1].quality) / 2.0;
  }
  double span = static_cast<double>(points_.back().items_processed -
                                    points_.front().items_processed);
  if (span <= 0.0) return FinalQuality();
  return area / span;
}

std::string LearningCurve::ToCsv() const {
  std::string out = "items,virtual_seconds,quality,f1,accuracy,auc\n";
  for (const auto& p : points_) {
    out += StrFormat("%zu,%.6f,%.6f,%.6f,%.6f,%.6f\n", p.items_processed,
                     static_cast<double>(p.virtual_micros) / 1e6, p.quality,
                     p.metrics.f1, p.metrics.accuracy, p.metrics.auc);
  }
  return out;
}

}  // namespace zombie
