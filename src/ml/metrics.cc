#include "ml/metrics.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace zombie {

namespace {

/// Minimum examples per shard when scoring on a pool; below
/// kShardSize * 2 the fork/join overhead outweighs the scan.
constexpr size_t kShardSize = 128;

/// Fills `scores`/`labels` (resized to data.size()) with Score()/label for
/// every example. Serial when pool is null or the dataset is small;
/// otherwise sharded over fixed [shard*kShardSize, ...) ranges with each
/// shard writing only its own slots, so the filled vectors are identical to
/// the serial fill regardless of thread count or completion order.
void ScoreAll(const Learner& learner, const Dataset& data, ThreadPool* pool,
              std::vector<double>* scores, std::vector<int32_t>* labels) {
  const size_t n = data.size();
  scores->resize(n);
  labels->resize(n);
  double* score_out = scores->data();
  int32_t* label_out = labels->data();
  if (pool == nullptr || n < 2 * kShardSize) {
    for (size_t i = 0; i < n; ++i) {
      ExampleView e = data.example(i);
      score_out[i] = learner.Score(e.x);
      label_out[i] = e.y;
    }
    return;
  }
  const size_t num_shards = (n + kShardSize - 1) / kShardSize;
  ParallelFor(pool, num_shards, [&](size_t shard) {
    const size_t begin = shard * kShardSize;
    const size_t end = std::min(begin + kShardSize, n);
    for (size_t i = begin; i < end; ++i) {
      ExampleView e = data.example(i);
      score_out[i] = learner.Score(e.x);
      label_out[i] = e.y;
    }
  });
}

}  // namespace

void Confusion::Add(int32_t truth, int32_t predicted) {
  if (truth == 1) {
    if (predicted == 1) {
      ++tp;
    } else {
      ++fn;
    }
  } else {
    if (predicted == 1) {
      ++fp;
    } else {
      ++tn;
    }
  }
}

double Accuracy(const Confusion& c) {
  int64_t total = c.total();
  if (total == 0) return 0.0;
  return static_cast<double>(c.tp + c.tn) / static_cast<double>(total);
}

double Precision(const Confusion& c) {
  int64_t denom = c.tp + c.fp;
  if (denom == 0) return 0.0;
  return static_cast<double>(c.tp) / static_cast<double>(denom);
}

double Recall(const Confusion& c) {
  int64_t denom = c.tp + c.fn;
  if (denom == 0) return 0.0;
  return static_cast<double>(c.tp) / static_cast<double>(denom);
}

double F1(const Confusion& c) {
  double p = Precision(c);
  double r = Recall(c);
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

std::string BinaryMetrics::ToString() const {
  return StrFormat("acc=%.3f p=%.3f r=%.3f f1=%.3f auc=%.3f", accuracy,
                   precision, recall, f1, auc);
}

const char* QualityMetricName(QualityMetric metric) {
  switch (metric) {
    case QualityMetric::kF1:
      return "f1";
    case QualityMetric::kAccuracy:
      return "accuracy";
    case QualityMetric::kAuc:
      return "auc";
  }
  return "?";
}

double QualityOf(const BinaryMetrics& m, QualityMetric metric) {
  switch (metric) {
    case QualityMetric::kF1:
      return m.f1;
    case QualityMetric::kAccuracy:
      return m.accuracy;
    case QualityMetric::kAuc:
      return m.auc;
  }
  return 0.0;
}

double AucFromScores(const std::vector<double>& scores,
                     const std::vector<int32_t>& labels) {
  ZCHECK_EQ(scores.size(), labels.size());
  size_t n = scores.size();
  int64_t num_pos = 0;
  for (int32_t y : labels) {
    if (y == 1) ++num_pos;
  }
  int64_t num_neg = static_cast<int64_t>(n) - num_pos;
  if (num_pos == 0 || num_neg == 0) return 0.0;

  // Midrank AUC: sort by score, assign average ranks within ties, sum
  // positive ranks (Mann–Whitney U).
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&scores](size_t a, size_t b) {
    return scores[a] < scores[b];
  });
  double pos_rank_sum = 0.0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    // Ranks are 1-based; ties share the average rank of their block.
    double avg_rank = (static_cast<double>(i + 1) + static_cast<double>(j + 1)) / 2.0;
    for (size_t k = i; k <= j; ++k) {
      if (labels[order[k]] == 1) pos_rank_sum += avg_rank;
    }
    i = j + 1;
  }
  double u = pos_rank_sum -
             static_cast<double>(num_pos) * (static_cast<double>(num_pos) + 1.0) / 2.0;
  return u / (static_cast<double>(num_pos) * static_cast<double>(num_neg));
}

BinaryMetrics EvaluateLearnerTuned(const Learner& learner,
                                   const Dataset& data,
                                   double* best_threshold,
                                   ThreadPool* pool) {
  std::vector<double> scores;
  std::vector<int32_t> labels;
  ScoreAll(learner, data, pool, &scores, &labels);
  int64_t total_pos = 0;
  for (int32_t y : labels) total_pos += y == 1;

  // Sweep thresholds in one pass over score-sorted examples: predicting
  // positive above position i means tp = positives in the suffix.
  std::vector<size_t> order(scores.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&scores](size_t a, size_t b) {
    return scores[a] > scores[b];
  });
  Confusion best;
  best.fn = total_pos;
  best.tn = static_cast<int64_t>(scores.size()) - total_pos;
  double best_f1 = F1(best);  // the all-negative classifier
  double best_tau = scores.empty() ? 0.0 : scores[order[0]] + 1.0;
  Confusion running = best;
  for (size_t i = 0; i < order.size(); ++i) {
    // Move example order[i] to the predicted-positive side.
    if (labels[order[i]] == 1) {
      ++running.tp;
      --running.fn;
    } else {
      ++running.fp;
      --running.tn;
    }
    // Only valid as a threshold at a score boundary.
    if (i + 1 < order.size() &&
        scores[order[i + 1]] == scores[order[i]]) {
      continue;
    }
    double f1 = F1(running);
    if (f1 > best_f1) {
      best_f1 = f1;
      best = running;
      double hi = scores[order[i]];
      double lo = i + 1 < order.size() ? scores[order[i + 1]] : hi - 1.0;
      best_tau = (hi + lo) / 2.0;
    }
  }
  if (best_threshold != nullptr) *best_threshold = best_tau;

  BinaryMetrics m;
  m.confusion = best;
  m.accuracy = Accuracy(best);
  m.precision = Precision(best);
  m.recall = Recall(best);
  m.f1 = F1(best);
  m.auc = AucFromScores(scores, labels);
  return m;
}

BinaryMetrics EvaluateLearner(const Learner& learner, const Dataset& data,
                              ThreadPool* pool) {
  BinaryMetrics m;
  std::vector<double> scores;
  std::vector<int32_t> labels;
  ScoreAll(learner, data, pool, &scores, &labels);
  for (size_t i = 0; i < scores.size(); ++i) {
    m.confusion.Add(labels[i], scores[i] > 0.0 ? 1 : 0);
  }
  m.accuracy = Accuracy(m.confusion);
  m.precision = Precision(m.confusion);
  m.recall = Recall(m.confusion);
  m.f1 = F1(m.confusion);
  m.auc = AucFromScores(scores, labels);
  return m;
}

}  // namespace zombie
