#ifndef ZOMBIE_ML_MAJORITY_H_
#define ZOMBIE_ML_MAJORITY_H_

#include <cstdint>
#include <memory>
#include <string>

#include "ml/learner.h"

namespace zombie {

/// Predicts the majority class seen so far, ignoring features. Baseline for
/// sanity checks: any real learner must beat it on a learnable task.
class MajorityClassLearner : public Learner {
 public:
  MajorityClassLearner() = default;

  void Update(SparseVectorView x, int32_t y) override;
  /// Score is the smoothed log-odds of the empirical class balance.
  double Score(SparseVectorView x) const override;
  void Reset() override;
  std::unique_ptr<Learner> Clone() const override;
  std::string name() const override { return "majority"; }
  size_t num_updates() const override { return count_[0] + count_[1]; }

 private:
  size_t count_[2] = {0, 0};
};

}  // namespace zombie

#endif  // ZOMBIE_ML_MAJORITY_H_
