#include "ml/sparse_vector.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace zombie {

// The hot kernels (Dot, AddScaledTo, SquaredDistance, norms) live inline in
// sparse_vector.h — see the kernel note there. This TU keeps the cold
// paths: lookup, construction, formatting.

double SparseVectorView::Get(uint32_t index) const {
  const uint32_t* end = indices_ + size_;
  const uint32_t* it = std::lower_bound(indices_, end, index);
  if (it == end || *it != index) return 0.0;
  return values_[static_cast<size_t>(it - indices_)];
}

double SparseVectorView::CosineSimilarity(SparseVectorView other) const {
  const double na = L2Norm();
  const double nb = other.L2Norm();
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(other) / (na * nb);
}

bool SparseVectorView::operator==(SparseVectorView other) const {
  if (size_ != other.size_) return false;
  for (size_t i = 0; i < size_; ++i) {
    if (indices_[i] != other.indices_[i]) return false;
    if (values_[i] != other.values_[i]) return false;
  }
  return true;
}

std::string SparseVectorView::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < size_; ++i) {
    if (i) out += ", ";
    out += StrFormat("%u:%g", indices_[i], values_[i]);
  }
  out += "}";
  return out;
}

SparseVector SparseVector::FromPairs(
    std::vector<std::pair<uint32_t, double>> pairs) {
  std::sort(pairs.begin(), pairs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  SparseVector v;
  v.indices_.reserve(pairs.size());
  v.values_.reserve(pairs.size());
  for (size_t i = 0; i < pairs.size();) {
    uint32_t idx = pairs[i].first;
    double sum = 0.0;
    while (i < pairs.size() && pairs[i].first == idx) {
      sum += pairs[i].second;
      ++i;
    }
    if (sum != 0.0) {
      v.indices_.push_back(idx);
      v.values_.push_back(sum);
    }
  }
  return v;
}

SparseVector SparseVector::FromView(SparseVectorView view) {
  SparseVector v;
  v.indices_.assign(view.indices_data(), view.indices_data() + view.num_nonzero());
  v.values_.assign(view.values_data(), view.values_data() + view.num_nonzero());
  return v;
}

void SparseVector::PushBack(uint32_t index, double value) {
  ZCHECK(indices_.empty() || index > indices_.back())
      << "PushBack indices must be strictly increasing";
  if (value == 0.0) return;
  indices_.push_back(index);
  values_.push_back(value);
}

void SparseVector::Scale(double factor) {
  for (double& v : values_) v *= factor;
}

void SparseVector::RemapThrough(const uint32_t* old_to_new,
                                size_t table_size) {
  const size_t n = indices_.size();
  if (n == 0) return;
  size_t kept;
#if defined(ZOMBIE_SIMD_ENABLED)
  if (n >= simd::kSimdMinEntries) {
    kept = simd::ActiveKernels().remap_sparse_view(
        indices_.data(), values_.data(), n, old_to_new, table_size,
        indices_.data(), values_.data());
  } else  // NOLINT(readability/braces) — pairs with the block below
#endif
  {
    kept = simd::ScalarRemapSparseView(indices_.data(), values_.data(), n,
                                       old_to_new, table_size,
                                       indices_.data(), values_.data());
  }
  indices_.resize(kept);
  values_.resize(kept);
}

}  // namespace zombie
