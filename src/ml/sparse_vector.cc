#include "ml/sparse_vector.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace zombie {

SparseVector SparseVector::FromPairs(
    std::vector<std::pair<uint32_t, double>> pairs) {
  std::sort(pairs.begin(), pairs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  SparseVector v;
  v.indices_.reserve(pairs.size());
  v.values_.reserve(pairs.size());
  for (size_t i = 0; i < pairs.size();) {
    uint32_t idx = pairs[i].first;
    double sum = 0.0;
    while (i < pairs.size() && pairs[i].first == idx) {
      sum += pairs[i].second;
      ++i;
    }
    if (sum != 0.0) {
      v.indices_.push_back(idx);
      v.values_.push_back(sum);
    }
  }
  return v;
}

void SparseVector::PushBack(uint32_t index, double value) {
  ZCHECK(indices_.empty() || index > indices_.back())
      << "PushBack indices must be strictly increasing";
  if (value == 0.0) return;
  indices_.push_back(index);
  values_.push_back(value);
}

double SparseVector::Get(uint32_t index) const {
  auto it = std::lower_bound(indices_.begin(), indices_.end(), index);
  if (it == indices_.end() || *it != index) return 0.0;
  return values_[static_cast<size_t>(it - indices_.begin())];
}

double SparseVector::Dot(const std::vector<double>& dense) const {
  double sum = 0.0;
  for (size_t i = 0; i < indices_.size(); ++i) {
    if (indices_[i] >= dense.size()) break;  // indices are sorted
    sum += values_[i] * dense[indices_[i]];
  }
  return sum;
}

double SparseVector::Dot(const SparseVector& other) const {
  double sum = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < indices_.size() && j < other.indices_.size()) {
    if (indices_[i] < other.indices_[j]) {
      ++i;
    } else if (indices_[i] > other.indices_[j]) {
      ++j;
    } else {
      sum += values_[i] * other.values_[j];
      ++i;
      ++j;
    }
  }
  return sum;
}

void SparseVector::AddScaledTo(double scale,
                               std::vector<double>* dense) const {
  if (indices_.empty()) return;
  if (dense->size() < dimension()) dense->resize(dimension(), 0.0);
  for (size_t i = 0; i < indices_.size(); ++i) {
    (*dense)[indices_[i]] += scale * values_[i];
  }
}

void SparseVector::Scale(double factor) {
  for (double& v : values_) v *= factor;
}

double SparseVector::L2Norm() const {
  double s = 0.0;
  for (double v : values_) s += v * v;
  return std::sqrt(s);
}

double SparseVector::L1Norm() const {
  double s = 0.0;
  for (double v : values_) s += std::abs(v);
  return s;
}

double SparseVector::SquaredDistance(const SparseVector& other) const {
  double s = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < indices_.size() || j < other.indices_.size()) {
    if (j >= other.indices_.size() ||
        (i < indices_.size() && indices_[i] < other.indices_[j])) {
      s += values_[i] * values_[i];
      ++i;
    } else if (i >= indices_.size() || indices_[i] > other.indices_[j]) {
      s += other.values_[j] * other.values_[j];
      ++j;
    } else {
      double d = values_[i] - other.values_[j];
      s += d * d;
      ++i;
      ++j;
    }
  }
  return s;
}

double SparseVector::CosineSimilarity(const SparseVector& other) const {
  double na = L2Norm();
  double nb = other.L2Norm();
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(other) / (na * nb);
}

std::string SparseVector::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < indices_.size(); ++i) {
    if (i) out += ", ";
    out += StrFormat("%u:%g", indices_[i], values_[i]);
  }
  out += "}";
  return out;
}

}  // namespace zombie
