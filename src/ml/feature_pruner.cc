#include "ml/feature_pruner.h"

#include <algorithm>
#include <utility>

#include "ml/simd/sparse_kernels.h"
#include "ml/simd/sparse_kernels_scalar.h"
#include "util/logging.h"

namespace zombie {

Status FeaturePrunerOptions::Validate() const {
  if (!enabled) return Status::OK();
  if (freeze_after_items == 0) {
    return Status::InvalidArgument("pruning.freeze_after_items must be > 0");
  }
  if (prune_fraction < 0.0 || prune_fraction >= 1.0) {
    return Status::InvalidArgument(
        "pruning.prune_fraction must be in [0, 1)");
  }
  return Status::OK();
}

FeaturePrunerOptions ConservativePruning() {
  FeaturePrunerOptions options;
  options.enabled = true;
  options.freeze_after_items = 100;
  options.min_activations = 3;
  options.prune_fraction = 0.5;
  return options;
}

FeaturePrunerOptions AggressivePruning() {
  FeaturePrunerOptions options;
  options.enabled = true;
  options.freeze_after_items = 75;
  options.min_activations = 2;
  options.prune_fraction = 0.9;
  return options;
}

FeaturePruner::FeaturePruner(FeaturePrunerOptions options)
    : options_(options) {}

void FeaturePruner::ObserveExample(SparseVectorView x) {
  if (!options_.enabled || frozen_ || disabled_) return;
  const size_t dim = x.dimension();
  if (activation_count_.size() < dim) activation_count_.resize(dim, 0);
  for (size_t i = 0; i < x.num_nonzero(); ++i) {
    ++activation_count_[x.index_at(i)];
  }
}

bool FeaturePruner::MaybeFreeze(Learner* learner, size_t items) {
  if (!options_.enabled || frozen_ || disabled_) return false;
  if (items < options_.freeze_after_items) return false;
  if (activation_count_.empty()) return false;

  std::vector<double> magnitudes;
  if (!learner->ExportWeightMagnitudes(&magnitudes)) {
    disabled_ = true;  // no per-feature weights (kNN, majority): stay a no-op
    return false;
  }

  // Rank eligible features by accumulated influence per activation,
  // ascending, with the feature id as a deterministic tie-break.
  const size_t dim = activation_count_.size();
  struct Ranked {
    double score;
    uint32_t id;
  };
  std::vector<Ranked> eligible;
  eligible.reserve(dim);
  for (size_t f = 0; f < dim; ++f) {
    const uint32_t act = activation_count_[f];
    if (act < options_.min_activations) continue;
    const double w = f < magnitudes.size() ? magnitudes[f] : 0.0;
    eligible.push_back({w / static_cast<double>(act),
                        static_cast<uint32_t>(f)});
  }
  std::sort(eligible.begin(), eligible.end(),
            [](const Ranked& a, const Ranked& b) {
              if (a.score != b.score) return a.score < b.score;
              return a.id < b.id;
            });
  const size_t num_pruned = static_cast<size_t>(
      options_.prune_fraction * static_cast<double>(eligible.size()));

  // Monotone remap: mark pruned ids, then number the kept ids in ascending
  // order so compacted vectors stay sorted.
  remap_.assign(dim, 0);
  for (size_t r = 0; r < num_pruned; ++r) {
    remap_[eligible[r].id] = simd::kPrunedFeature;
  }
  uint32_t next = 0;
  for (size_t f = 0; f < dim; ++f) {
    if (remap_[f] == simd::kPrunedFeature) continue;
    remap_[f] = next++;
  }

  if (!learner->CompactFeatures(remap_, next)) {
    disabled_ = true;
    remap_.clear();
    return false;
  }

  stats_.frozen_at_items = items;
  stats_.input_dimension = dim;
  stats_.eligible_features = eligible.size();
  stats_.kept_features = next;
  stats_.pruned_features = dim - next;
  frozen_ = true;
  activation_count_.clear();
  activation_count_.shrink_to_fit();
  return true;
}

void FeaturePruner::CompactInPlace(SparseVector* x) const {
  if (!frozen_) return;
  x->RemapThrough(remap_.data(), remap_.size());
}

Dataset FeaturePruner::CompactDataset(const Dataset& full) const {
  ZCHECK(frozen_) << "CompactDataset before the mask froze";
  Dataset out;
  std::vector<uint32_t> idx_buf;
  std::vector<double> val_buf;
  for (size_t i = 0; i < full.size(); ++i) {
    const ExampleView e = full.example(i);
    const size_t n = e.x.num_nonzero();
    idx_buf.resize(n);
    val_buf.resize(n);
    // Out-of-place scalar remap: dataset rows are read-only views and this
    // runs once per run (at the freeze), so dispatch overhead is moot.
    const size_t kept = simd::ScalarRemapSparseView(
        e.x.indices_data(), e.x.values_data(), n, remap_.data(),
        remap_.size(), idx_buf.data(), val_buf.data());
    out.Add(SparseVectorView(idx_buf.data(), val_buf.data(), kept), e.y);
  }
  return out;
}

}  // namespace zombie
