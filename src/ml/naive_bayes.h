#ifndef ZOMBIE_ML_NAIVE_BAYES_H_
#define ZOMBIE_ML_NAIVE_BAYES_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ml/learner.h"

namespace zombie {

/// Multinomial naive Bayes with Laplace smoothing, trained incrementally.
///
/// This is the default Zombie inner-loop learner: a single Update() costs
/// O(nnz) and the model is exact for the data seen so far (no epochs),
/// which is exactly what a one-item-at-a-time input selection loop wants.
/// Real-valued features are treated as fractional counts; negative feature
/// values are clamped to zero (multinomial NB is count-based).
class NaiveBayesLearner : public Learner {
 public:
  /// `alpha` is the Laplace smoothing pseudo-count (> 0). The default is
  /// small because the feature pipeline L2-normalizes: per-feature masses
  /// are fractions, and a large alpha would drown them for thousands of
  /// updates.
  explicit NaiveBayesLearner(double alpha = 0.1);

  void Update(SparseVectorView x, int32_t y) override;
  double Score(SparseVectorView x) const override;
  double PredictProbability(SparseVectorView x) const override;
  void Reset() override;
  std::unique_ptr<Learner> Clone() const override;
  std::string name() const override { return "nb"; }
  size_t num_updates() const override { return num_updates_; }
  bool ExportWeightMagnitudes(std::vector<double>* out) const override;
  bool CompactFeatures(const std::vector<uint32_t>& old_to_new,
                       uint32_t new_dimension) override;

  double alpha() const { return alpha_; }

 private:
  // Log P(y=1|x) - log P(y=0|x) with smoothing over the currently observed
  // feature dimensionality.
  double LogOdds(SparseVectorView x) const;

  double alpha_;
  size_t num_updates_ = 0;
  // Per-class document counts and per-class total token mass.
  double class_count_[2] = {0.0, 0.0};
  double token_total_[2] = {0.0, 0.0};
  // Per-class per-feature token mass; grown on demand.
  std::vector<double> token_count_[2];
  size_t dimension_ = 0;
};

}  // namespace zombie

#endif  // ZOMBIE_ML_NAIVE_BAYES_H_
