#ifndef ZOMBIE_ML_LEARNING_CURVE_H_
#define ZOMBIE_ML_LEARNING_CURVE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ml/metrics.h"

namespace zombie {

/// One quality evaluation during a run.
struct CurvePoint {
  /// Raw items processed (featurized) so far.
  size_t items_processed = 0;
  /// Virtual time spent so far, microseconds.
  int64_t virtual_micros = 0;
  /// The tracked quality scalar at this point.
  double quality = 0.0;
  /// Full metrics bundle at this point.
  BinaryMetrics metrics;
};

/// The quality-versus-effort trajectory of one inner-loop run — the unit of
/// comparison for every figure analogue ("quality vs. items processed").
class LearningCurve {
 public:
  LearningCurve() = default;

  void Add(CurvePoint point);

  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const CurvePoint& point(size_t i) const { return points_[i]; }
  const std::vector<CurvePoint>& points() const { return points_; }

  /// Quality at the last evaluation (0 if no evaluations happened).
  double FinalQuality() const;

  /// Highest quality reached anywhere on the curve.
  double PeakQuality() const;

  /// Virtual time of the first point with quality >= target, or -1 if the
  /// curve never reaches it.
  int64_t TimeToQuality(double target) const;

  /// Items processed at the first point with quality >= target, or -1.
  int64_t ItemsToQuality(double target) const;

  /// Trapezoidal area under quality-vs-items, normalized by the item span;
  /// a scale-free "how fast did it learn" scalar (higher is better).
  double NormalizedAucItems() const;

  /// CSV rendering: items,virtual_seconds,quality,f1,accuracy,auc.
  std::string ToCsv() const;

 private:
  std::vector<CurvePoint> points_;
};

}  // namespace zombie

#endif  // ZOMBIE_ML_LEARNING_CURVE_H_
