#include "ml/adagrad_lr.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace zombie {

AdaGradLogisticLearner::AdaGradLogisticLearner(AdaGradOptions options)
    : options_(options) {
  ZCHECK_GT(options.eta, 0.0);
  ZCHECK_GE(options.lambda, 0.0);
  ZCHECK_GT(options.epsilon, 0.0);
}

double AdaGradLogisticLearner::RawScore(SparseVectorView x) const {
  double s = x.Dot(weights_) + bias_;
  return std::clamp(s, -options_.score_clip, options_.score_clip);
}

double AdaGradLogisticLearner::Score(SparseVectorView x) const {
  return RawScore(x);
}

double AdaGradLogisticLearner::PredictProbability(
    SparseVectorView x) const {
  return 1.0 / (1.0 + std::exp(-RawScore(x)));
}

void AdaGradLogisticLearner::Update(SparseVectorView x, int32_t y) {
  ZCHECK(y == 0 || y == 1) << "binary labels required, got " << y;
  ++num_updates_;
  double p = 1.0 / (1.0 + std::exp(-RawScore(x)));
  double residual = static_cast<double>(y) - p;

  if (weights_.size() < x.dimension()) {
    weights_.resize(x.dimension(), 0.0);
    grad_sq_.resize(x.dimension(), 0.0);
  }
  for (size_t i = 0; i < x.num_nonzero(); ++i) {
    uint32_t idx = x.index_at(i);
    // Gradient of the regularized negative log-likelihood at idx.
    double g = -residual * x.value_at(i) + options_.lambda * weights_[idx];
    grad_sq_[idx] += g * g;
    weights_[idx] -=
        options_.eta * g / (options_.epsilon + std::sqrt(grad_sq_[idx]));
  }
  double gb = -residual;
  bias_grad_sq_ += gb * gb;
  bias_ -= options_.eta * gb / (options_.epsilon + std::sqrt(bias_grad_sq_));
}

double AdaGradLogisticLearner::WeightAt(uint32_t index) const {
  if (index >= weights_.size()) return 0.0;
  return weights_[index];
}

void AdaGradLogisticLearner::Reset() {
  weights_.clear();
  grad_sq_.clear();
  bias_ = 0.0;
  bias_grad_sq_ = 0.0;
  num_updates_ = 0;
}

std::unique_ptr<Learner> AdaGradLogisticLearner::Clone() const {
  return std::make_unique<AdaGradLogisticLearner>(options_);
}

bool AdaGradLogisticLearner::ExportWeightMagnitudes(
    std::vector<double>* out) const {
  out->resize(weights_.size());
  for (size_t f = 0; f < weights_.size(); ++f) {
    (*out)[f] = std::abs(weights_[f]);
  }
  return true;
}

bool AdaGradLogisticLearner::CompactFeatures(
    const std::vector<uint32_t>& old_to_new, uint32_t new_dimension) {
  // grad_sq_ rides along so kept features keep their annealed step sizes.
  CompactDenseState(old_to_new, new_dimension, &weights_);
  CompactDenseState(old_to_new, new_dimension, &grad_sq_);
  return true;
}

}  // namespace zombie
