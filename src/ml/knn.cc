#include "ml/knn.h"

#include <algorithm>

#include "util/logging.h"

namespace zombie {

KnnLearner::KnnLearner(size_t k) : k_(k) { ZCHECK_GE(k, 1u); }

void KnnLearner::Update(SparseVectorView x, int32_t y) {
  ZCHECK(y == 0 || y == 1) << "binary labels required, got " << y;
  memory_.Add(x, y);
}

double KnnLearner::Score(SparseVectorView x) const {
  if (memory_.empty()) return 0.0;
  // (similarity, label) for all memorized examples; take the top k.
  std::vector<std::pair<double, int32_t>> sims;
  sims.reserve(memory_.size());
  for (ExampleView e : memory_) {
    sims.emplace_back(x.CosineSimilarity(e.x), e.y);
  }
  size_t k = std::min(k_, sims.size());
  std::partial_sort(
      sims.begin(), sims.begin() + static_cast<ptrdiff_t>(k), sims.end(),
      [](const auto& a, const auto& b) { return a.first > b.first; });
  double score = 0.0;
  for (size_t i = 0; i < k; ++i) {
    double w = std::max(sims[i].first, 0.0);
    score += sims[i].second == 1 ? w : -w;
  }
  return score / static_cast<double>(k);
}

void KnnLearner::Reset() { memory_ = Dataset(); }

std::unique_ptr<Learner> KnnLearner::Clone() const {
  return std::make_unique<KnnLearner>(k_);
}

}  // namespace zombie
