#include "ml/majority.h"

#include <cmath>

#include "util/logging.h"

namespace zombie {

void MajorityClassLearner::Update(SparseVectorView /*x*/, int32_t y) {
  ZCHECK(y == 0 || y == 1) << "binary labels required, got " << y;
  ++count_[y];
}

double MajorityClassLearner::Score(SparseVectorView /*x*/) const {
  double p1 = (static_cast<double>(count_[1]) + 1.0) /
              (static_cast<double>(count_[0] + count_[1]) + 2.0);
  return std::log(p1 / (1.0 - p1));
}

void MajorityClassLearner::Reset() { count_[0] = count_[1] = 0; }

std::unique_ptr<Learner> MajorityClassLearner::Clone() const {
  return std::make_unique<MajorityClassLearner>();
}

}  // namespace zombie
