#include "ml/naive_bayes.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace zombie {

NaiveBayesLearner::NaiveBayesLearner(double alpha) : alpha_(alpha) {
  ZCHECK_GT(alpha, 0.0);
}

void NaiveBayesLearner::Update(SparseVectorView x, int32_t y) {
  ZCHECK(y == 0 || y == 1) << "binary labels required, got " << y;
  ++num_updates_;
  class_count_[y] += 1.0;
  dimension_ = std::max(dimension_, x.dimension());
  auto& counts = token_count_[y];
  if (counts.size() < x.dimension()) counts.resize(x.dimension(), 0.0);
  for (size_t i = 0; i < x.num_nonzero(); ++i) {
    double v = x.value_at(i);
    if (v <= 0.0) continue;  // multinomial NB: counts only
    counts[x.index_at(i)] += v;
    token_total_[y] += v;
  }
}

double NaiveBayesLearner::LogOdds(SparseVectorView x) const {
  // Uninformed model: even log-odds.
  if (class_count_[0] + class_count_[1] == 0.0) return 0.0;

  // Smoothed class prior log-ratio.
  double prior1 = (class_count_[1] + 1.0) /
                  (class_count_[0] + class_count_[1] + 2.0);
  double log_odds = std::log(prior1 / (1.0 - prior1));

  double v_dim = static_cast<double>(std::max<size_t>(dimension_, 1));
  double denom0 = token_total_[0] + alpha_ * v_dim;
  double denom1 = token_total_[1] + alpha_ * v_dim;
  for (size_t i = 0; i < x.num_nonzero(); ++i) {
    double v = x.value_at(i);
    if (v <= 0.0) continue;
    uint32_t idx = x.index_at(i);
    double c0 = idx < token_count_[0].size() ? token_count_[0][idx] : 0.0;
    double c1 = idx < token_count_[1].size() ? token_count_[1][idx] : 0.0;
    double lp1 = std::log((c1 + alpha_) / denom1);
    double lp0 = std::log((c0 + alpha_) / denom0);
    log_odds += v * (lp1 - lp0);
  }
  return log_odds;
}

double NaiveBayesLearner::Score(SparseVectorView x) const {
  return LogOdds(x);
}

double NaiveBayesLearner::PredictProbability(SparseVectorView x) const {
  return 1.0 / (1.0 + std::exp(-LogOdds(x)));
}

void NaiveBayesLearner::Reset() {
  num_updates_ = 0;
  class_count_[0] = class_count_[1] = 0.0;
  token_total_[0] = token_total_[1] = 0.0;
  token_count_[0].clear();
  token_count_[1].clear();
  dimension_ = 0;
}

std::unique_ptr<Learner> NaiveBayesLearner::Clone() const {
  return std::make_unique<NaiveBayesLearner>(alpha_);
}

bool NaiveBayesLearner::ExportWeightMagnitudes(
    std::vector<double>* out) const {
  // Per unit of feature value, feature f moves LogOdds by (lp1 - lp0); its
  // magnitude is the pruning signal. Never-seen features get the nonzero
  // background |log(denom0/denom1)| — harmless, since the pruner divides by
  // activation count and gates on a minimum-activation floor.
  const size_t dim = std::max(token_count_[0].size(), token_count_[1].size());
  out->assign(dim, 0.0);
  const double v_dim = static_cast<double>(std::max<size_t>(dimension_, 1));
  const double denom0 = token_total_[0] + alpha_ * v_dim;
  const double denom1 = token_total_[1] + alpha_ * v_dim;
  for (size_t f = 0; f < dim; ++f) {
    const double c0 = f < token_count_[0].size() ? token_count_[0][f] : 0.0;
    const double c1 = f < token_count_[1].size() ? token_count_[1][f] : 0.0;
    (*out)[f] = std::abs(std::log((c1 + alpha_) / denom1) -
                         std::log((c0 + alpha_) / denom0));
  }
  return true;
}

bool NaiveBayesLearner::CompactFeatures(
    const std::vector<uint32_t>& old_to_new, uint32_t new_dimension) {
  // dimension_ and token_total_ deliberately keep their frozen full-space
  // values: the smoothing denominators must not move, so that scoring a
  // compacted vector stays bit-identical to scoring the original vector
  // with the pruned features zeroed out (the contract in learner.h).
  CompactDenseState(old_to_new, new_dimension, &token_count_[0]);
  CompactDenseState(old_to_new, new_dimension, &token_count_[1]);
  return true;
}

}  // namespace zombie
