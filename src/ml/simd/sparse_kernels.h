#ifndef ZOMBIE_ML_SIMD_SPARSE_KERNELS_H_
#define ZOMBIE_ML_SIMD_SPARSE_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ml/simd/simd_level.h"

// Runtime ISA dispatch for the four hot sparse kernels. The contract every
// table entry obeys: bit-identical results to the scalar reference in
// sparse_kernels_scalar.h — same FP additions, same operands, same order.
// SIMD implementations may only vectorize *index* work (scanning mismatch
// runs, bound compares, gathers of independent slots); every accumulator
// update stays serial and in scalar program order. Compiled with
// -ffp-contract=off so no path silently fuses a mul+add the scalar code
// performs as two roundings.
//
// This header is intrinsics-free on purpose: callers (sparse_vector.h, the
// benches, the tests) see only raw-pointer function signatures, and the
// per-ISA TUs are the sole files allowed to include <immintrin.h> (enforced
// by the no-raw-intrinsics lint rule).

namespace zombie {
namespace simd {

using DotSparseDenseFn = double (*)(const uint32_t* indices,
                                    const double* values, size_t n,
                                    const double* dense);
using DotSparseSparseFn = double (*)(const uint32_t* ai, const double* av,
                                     size_t na, const uint32_t* bi,
                                     const double* bv, size_t nb);
using AddScaledToFn = void (*)(const uint32_t* indices, const double* values,
                               size_t n, double scale, double* out);
using SquaredDistanceFn = double (*)(const uint32_t* ai, const double* av,
                                     size_t na, const uint32_t* bi,
                                     const double* bv, size_t nb);

/// One dispatch table per ISA level. Preconditions (enforced by the
/// sparse_vector.h wrappers, which keep the cutoff/resize/empty logic):
///   dot_sparse_dense:  every indices[i] < size of `dense`
///   dot_sparse_sparse: na > 0 && nb > 0
///   add_scaled_to:     `out` spans [0, indices[n-1]]
///   squared_distance:  none (empty sides flow through the tails)
struct SparseKernels {
  DotSparseDenseFn dot_sparse_dense;
  DotSparseSparseFn dot_sparse_sparse;
  AddScaledToFn add_scaled_to;
  SquaredDistanceFn squared_distance;
};

/// Table for the level resolved once from cpuid + compiled support +
/// ZOMBIE_SIMD_LEVEL (see ActiveSimdLevel()). The reference the hot path
/// calls through; the pointer never changes after first use.
const SparseKernels& ActiveKernels();

/// Table for an explicit level, or nullptr if this binary was not compiled
/// with kernels for it. Returns compiled tables regardless of what the
/// running CPU supports — callers that intend to *execute* (tests, benches)
/// must pick levels from AvailableLevels() instead.
const SparseKernels* KernelsForLevel(SimdLevel level);

/// Levels that are both compiled in and runnable on this CPU, ascending.
/// Always contains kScalar. This is what the differential tests and the
/// per-ISA benches iterate over.
std::vector<SimdLevel> AvailableLevels();

/// Below this many touched entries the wrappers skip the function-pointer
/// hop and inline the scalar loop directly: tiny vectors are common in the
/// feature pipeline, the call indirection costs more than SIMD saves, and
/// both paths are bit-identical by contract so the cutover is unobservable.
constexpr size_t kSimdMinEntries = 16;

}  // namespace simd
}  // namespace zombie

#endif  // ZOMBIE_ML_SIMD_SPARSE_KERNELS_H_
