#ifndef ZOMBIE_ML_SIMD_SPARSE_KERNELS_H_
#define ZOMBIE_ML_SIMD_SPARSE_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ml/simd/kernel_entries.h"  // kPrunedFeature
#include "ml/simd/simd_level.h"

// Runtime ISA dispatch for the five hot sparse kernels. The contract every
// table entry obeys: bit-identical results to the scalar reference in
// sparse_kernels_scalar.h — same FP additions, same operands, same order.
// SIMD implementations may only vectorize *index* work (scanning mismatch
// runs, bound compares, gathers of independent slots); every accumulator
// update stays serial and in scalar program order. Compiled with
// -ffp-contract=off so no path silently fuses a mul+add the scalar code
// performs as two roundings.
//
// This header is intrinsics-free on purpose: callers (sparse_vector.h, the
// benches, the tests) see only raw-pointer function signatures, and the
// per-ISA TUs are the sole files allowed to include <immintrin.h> (enforced
// by the no-raw-intrinsics lint rule).

namespace zombie {
namespace simd {

using DotSparseDenseFn = double (*)(const uint32_t* indices,
                                    const double* values, size_t n,
                                    const double* dense);
using DotSparseSparseFn = double (*)(const uint32_t* ai, const double* av,
                                     size_t na, const uint32_t* bi,
                                     const double* bv, size_t nb);
using AddScaledToFn = void (*)(const uint32_t* indices, const double* values,
                               size_t n, double scale, double* out);
using SquaredDistanceFn = double (*)(const uint32_t* ai, const double* av,
                                     size_t na, const uint32_t* bi,
                                     const double* bv, size_t nb);
/// Compacts a sorted sparse vector through a monotone old-id→dense-id remap
/// table: entries whose `remap[index]` is kPrunedFeature are dropped, every
/// other entry is rewritten to its dense id, and the kept count is returned.
/// Indices at or past `remap_size` are dropped (indices are sorted, so they
/// form a suffix). Because the table is monotone over kept ids, the output
/// stays sorted. Pure data movement — no FP arithmetic — so bit-identity
/// across ISA levels reduces to producing the identical kept sequence.
/// In-place operation (out_* aliasing the inputs) is allowed: the write
/// cursor never passes the read cursor. Out buffers must hold `n` entries.
using RemapSparseViewFn = size_t (*)(const uint32_t* indices,
                                     const double* values, size_t n,
                                     const uint32_t* remap, size_t remap_size,
                                     uint32_t* out_indices,
                                     double* out_values);

/// One dispatch table per ISA level. Preconditions (enforced by the
/// sparse_vector.h wrappers, which keep the cutoff/resize/empty logic):
///   dot_sparse_dense:  every indices[i] < size of `dense`
///   dot_sparse_sparse: na > 0 && nb > 0
///   add_scaled_to:     `out` spans [0, indices[n-1]]
///   squared_distance:  none (empty sides flow through the tails)
struct SparseKernels {
  DotSparseDenseFn dot_sparse_dense;
  DotSparseSparseFn dot_sparse_sparse;
  AddScaledToFn add_scaled_to;
  SquaredDistanceFn squared_distance;
  RemapSparseViewFn remap_sparse_view;
};

/// Table for the level resolved once from cpuid + compiled support +
/// ZOMBIE_SIMD_LEVEL (see ActiveSimdLevel()). The reference the hot path
/// calls through; the pointer never changes after first use.
const SparseKernels& ActiveKernels();

/// Table for an explicit level, or nullptr if this binary was not compiled
/// with kernels for it. Returns compiled tables regardless of what the
/// running CPU supports — callers that intend to *execute* (tests, benches)
/// must pick levels from AvailableLevels() instead.
const SparseKernels* KernelsForLevel(SimdLevel level);

/// Levels that are both compiled in and runnable on this CPU, ascending.
/// Always contains kScalar. This is what the differential tests and the
/// per-ISA benches iterate over.
std::vector<SimdLevel> AvailableLevels();

/// Below this many touched entries the wrappers skip the function-pointer
/// hop and inline the scalar loop directly: tiny vectors are common in the
/// feature pipeline, the call indirection costs more than SIMD saves, and
/// both paths are bit-identical by contract so the cutover is unobservable.
constexpr size_t kSimdMinEntries = 16;

/// Per-kernel override for the gathered sparse·dense dot. The PR 8 negative
/// result (EXPERIMENTS.md) showed the gather variant losing to scalar at the
/// generic cutoff; the per-nnz re-measure (bench_micro BM_SimdDotSparseDense
/// sweep, nnz 8..512) found no crossover at any size — scalar's two-load
/// multiply-accumulate already saturates the load ports, so the gather's
/// fixed overhead (index widening, INT32_MAX guard, lane extraction) never
/// pays for itself. The Dot(dense) wrapper therefore routes to the scalar
/// loop at every size; the SIMD variants stay compiled, dispatched, and
/// bit-equality-tested (KernelsForLevel) so a part with a faster gather only
/// needs this constant recalibrated, and the cutover stays unobservable
/// because both paths are bit-identical by contract.
constexpr size_t kSimdMinEntriesDotSparseDense = SIZE_MAX;

}  // namespace simd
}  // namespace zombie

#endif  // ZOMBIE_ML_SIMD_SPARSE_KERNELS_H_
