#ifndef ZOMBIE_ML_SIMD_KERNEL_ENTRIES_H_
#define ZOMBIE_ML_SIMD_KERNEL_ENTRIES_H_

#include <cstddef>
#include <cstdint>

// Entry-point declarations shared between dispatch.cc and the per-ISA TUs.
// Deliberately minimal: this is the only project header the -mavx2/-mavx512*
// TUs include. Anything more (std containers, inline helpers) would risk the
// linker picking an AVX-compiled instantiation of a weak symbol that scalar
// callers also use — an ODR trap that turns "runs on any x86-64" into
// SIGILL on pre-AVX hardware. All helpers inside the per-ISA TUs live in
// anonymous namespaces for the same reason.

namespace zombie {
namespace simd {

/// Remap-table sentinel for a pruned feature id (see RemapSparseViewFn in
/// sparse_kernels.h). Lives here because the per-ISA TUs need it and this is
/// the only project header they may include.
constexpr uint32_t kPrunedFeature = 0xffffffffu;

#if defined(ZOMBIE_SIMD_HAVE_AVX2)
double Avx2DotSparseDense(const uint32_t* indices, const double* values,
                          size_t n, const double* dense);
double Avx2DotSparseSparse(const uint32_t* ai, const double* av, size_t na,
                           const uint32_t* bi, const double* bv, size_t nb);
void Avx2AddScaledTo(const uint32_t* indices, const double* values, size_t n,
                     double scale, double* out);
double Avx2SquaredDistance(const uint32_t* ai, const double* av, size_t na,
                           const uint32_t* bi, const double* bv, size_t nb);
size_t Avx2RemapSparseView(const uint32_t* indices, const double* values,
                           size_t n, const uint32_t* remap, size_t remap_size,
                           uint32_t* out_indices, double* out_values);
#endif

#if defined(ZOMBIE_SIMD_HAVE_AVX512)
double Avx512DotSparseDense(const uint32_t* indices, const double* values,
                            size_t n, const double* dense);
double Avx512DotSparseSparse(const uint32_t* ai, const double* av, size_t na,
                             const uint32_t* bi, const double* bv, size_t nb);
void Avx512AddScaledTo(const uint32_t* indices, const double* values,
                       size_t n, double scale, double* out);
double Avx512SquaredDistance(const uint32_t* ai, const double* av, size_t na,
                             const uint32_t* bi, const double* bv, size_t nb);
size_t Avx512RemapSparseView(const uint32_t* indices, const double* values,
                             size_t n, const uint32_t* remap,
                             size_t remap_size, uint32_t* out_indices,
                             double* out_values);
#endif

}  // namespace simd
}  // namespace zombie

#endif  // ZOMBIE_ML_SIMD_KERNEL_ENTRIES_H_
