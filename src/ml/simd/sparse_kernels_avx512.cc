// AVX-512 implementations of the four sparse kernels. Compiled with
// "-mavx512f -mavx512bw -mavx512dq -mavx512vl -mavx512cd -ffp-contract=off"
// and reached only through the dispatch table after cpuid confirms the full
// feature set (see simd_level.cc). Same isolation and bit-identity rules as
// the AVX2 TU: anonymous-namespace helpers, raw entry points, SIMD on index
// scans and independent multiplies only, every accumulator add serial and
// in scalar order.

#include <cstddef>
#include <cstdint>
#include <immintrin.h>

#include "ml/simd/kernel_entries.h"

#if defined(ZOMBIE_SIMD_HAVE_AVX512)

namespace zombie {
namespace simd {
namespace {

// First position >= i whose index is >= bound, or n. 16 indices per
// compare; AVX-512 has a native unsigned compare, so no sign-bias trick is
// needed for UINT32_MAX-adjacent indices. Scalar probe prefix as in the
// AVX2 TU: runs of ~2 (balanced merges) stay at scalar cost, long runs
// (unbalanced merges) retire 16 indices per compare.
inline size_t AdvanceTo(const uint32_t* idx, size_t i, size_t n,
                        uint32_t bound) {
  for (int probe = 0; probe < 4; ++probe) {
    if (i == n || idx[i] >= bound) return i;
    ++i;
  }
  const __m512i vbound = _mm512_set1_epi32(static_cast<int32_t>(bound));
  for (; i + 16 <= n; i += 16) {
    const __m512i lanes = _mm512_loadu_si512(idx + i);
    const unsigned below = _mm512_cmplt_epu32_mask(lanes, vbound);
    if (below != 0xffffu) {
      return i + static_cast<size_t>(__builtin_ctz(~below & 0x1ffffu));
    }
  }
  while (i < n && idx[i] < bound) ++i;
  return i;
}

// s += v[k]^2 for k in [i, end), in order: 8-wide squares, serial adds.
inline double AccumulateSquares(const double* v, size_t i, size_t end,
                                double s) {
  alignas(64) double sq[8];
  for (; i + 8 <= end; i += 8) {
    const __m512d lanes = _mm512_loadu_pd(v + i);
    _mm512_store_pd(sq, _mm512_mul_pd(lanes, lanes));
    for (int k = 0; k < 8; ++k) s += sq[k];
  }
  for (; i < end; ++i) s += v[i] * v[i];
  return s;
}

}  // namespace

double Avx512DotSparseDense(const uint32_t* indices, const double* values,
                            size_t n, const double* dense) {
  double sum = 0.0;
  size_t i = 0;
  // _mm512_i32gather_pd sign-extends its 32-bit indices; sorted input, so
  // the last index bounds them all.
  if (n >= 8 && indices[n - 1] <= static_cast<uint32_t>(INT32_MAX)) {
    alignas(64) double prod[8];
    for (; i + 8 <= n; i += 8) {
      const __m256i vidx = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(indices + i));
      // Masked form with an explicit zero source: the plain gather
      // intrinsic's "uninitialized pass-through" idiom trips
      // -Wmaybe-uninitialized under -Werror builds.
      const __m512d gathered = _mm512_mask_i32gather_pd(
          _mm512_setzero_pd(), static_cast<__mmask8>(0xff), vidx, dense, 8);
      _mm512_store_pd(prod,
                      _mm512_mul_pd(_mm512_loadu_pd(values + i), gathered));
      for (int k = 0; k < 8; ++k) sum += prod[k];
    }
  }
  for (; i < n; ++i) sum += values[i] * dense[indices[i]];
  return sum;
}

double Avx512DotSparseSparse(const uint32_t* ai, const double* av, size_t na,
                             const uint32_t* bi, const double* bv,
                             size_t nb) {
  double sum = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (true) {
    i = AdvanceTo(ai, i, na, bi[j]);
    if (i == na) return sum;
    j = AdvanceTo(bi, j, nb, ai[i]);
    if (j == nb) return sum;
    if (bi[j] == ai[i]) {
      sum += av[i] * bv[j];
      if (++i == na || ++j == nb) return sum;
    }
  }
}

void Avx512AddScaledTo(const uint32_t* indices, const double* values,
                       size_t n, double scale, double* out) {
  // See the AVX2 TU: distinct slots, vectorized multiply, serial RMW.
  const __m512d vscale = _mm512_set1_pd(scale);
  alignas(64) double prod[8];
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_store_pd(prod,
                    _mm512_mul_pd(vscale, _mm512_loadu_pd(values + i)));
    for (int k = 0; k < 8; ++k) {
      out[indices[i + static_cast<size_t>(k)]] += prod[k];
    }
  }
  for (; i < n; ++i) out[indices[i]] += scale * values[i];
}

double Avx512SquaredDistance(const uint32_t* ai, const double* av, size_t na,
                             const uint32_t* bi, const double* bv,
                             size_t nb) {
  double s = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < na && j < nb) {
    const uint32_t a = ai[i];
    const uint32_t b = bi[j];
    if (a == b) {
      const double d = av[i] - bv[j];
      s += d * d;
      ++i;
      ++j;
    } else if (a < b) {
      const size_t end = AdvanceTo(ai, i, na, b);
      s = AccumulateSquares(av, i, end, s);
      i = end;
    } else {
      const size_t end = AdvanceTo(bi, j, nb, a);
      s = AccumulateSquares(bv, j, end, s);
      j = end;
    }
  }
  s = AccumulateSquares(av, i, na, s);
  s = AccumulateSquares(bv, j, nb, s);
  return s;
}

}  // namespace simd
}  // namespace zombie

#endif  // ZOMBIE_SIMD_HAVE_AVX512
