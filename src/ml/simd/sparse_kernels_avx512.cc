// AVX-512 implementations of the four sparse kernels. Compiled with
// "-mavx512f -mavx512bw -mavx512dq -mavx512vl -mavx512cd -ffp-contract=off"
// and reached only through the dispatch table after cpuid confirms the full
// feature set (see simd_level.cc). Same isolation and bit-identity rules as
// the AVX2 TU: anonymous-namespace helpers, raw entry points, SIMD on index
// scans and independent multiplies only, every accumulator add serial and
// in scalar order.

#include <cstddef>
#include <cstdint>
#include <immintrin.h>

#include "ml/simd/kernel_entries.h"

#if defined(ZOMBIE_SIMD_HAVE_AVX512)

namespace zombie {
namespace simd {
namespace {

// First position >= i whose index is >= bound, or n. 16 indices per
// compare; AVX-512 has a native unsigned compare, so no sign-bias trick is
// needed for UINT32_MAX-adjacent indices. Scalar probe prefix as in the
// AVX2 TU: runs of ~2 (balanced merges) stay at scalar cost, long runs
// (unbalanced merges) retire 16 indices per compare.
inline size_t AdvanceTo(const uint32_t* idx, size_t i, size_t n,
                        uint32_t bound) {
  for (int probe = 0; probe < 4; ++probe) {
    if (i == n || idx[i] >= bound) return i;
    ++i;
  }
  const __m512i vbound = _mm512_set1_epi32(static_cast<int32_t>(bound));
  for (; i + 16 <= n; i += 16) {
    const __m512i lanes = _mm512_loadu_si512(idx + i);
    const unsigned below = _mm512_cmplt_epu32_mask(lanes, vbound);
    if (below != 0xffffu) {
      return i + static_cast<size_t>(__builtin_ctz(~below & 0x1ffffu));
    }
  }
  while (i < n && idx[i] < bound) ++i;
  return i;
}

// s += v[k]^2 for k in [i, end), in order: 8-wide squares, serial adds.
inline double AccumulateSquares(const double* v, size_t i, size_t end,
                                double s) {
  alignas(64) double sq[8];
  for (; i + 8 <= end; i += 8) {
    const __m512d lanes = _mm512_loadu_pd(v + i);
    _mm512_store_pd(sq, _mm512_mul_pd(lanes, lanes));
    for (int k = 0; k < 8; ++k) s += sq[k];
  }
  for (; i < end; ++i) s += v[i] * v[i];
  return s;
}

}  // namespace

double Avx512DotSparseDense(const uint32_t* indices, const double* values,
                            size_t n, const double* dense) {
  double sum = 0.0;
  size_t i = 0;
  // _mm512_i32gather_pd sign-extends its 32-bit indices; sorted input, so
  // the last index bounds them all.
  if (n >= 8 && indices[n - 1] <= static_cast<uint32_t>(INT32_MAX)) {
    alignas(64) double prod[8];
    for (; i + 8 <= n; i += 8) {
      const __m256i vidx = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(indices + i));
      // Masked form with an explicit zero source: the plain gather
      // intrinsic's "uninitialized pass-through" idiom trips
      // -Wmaybe-uninitialized under -Werror builds.
      const __m512d gathered = _mm512_mask_i32gather_pd(
          _mm512_setzero_pd(), static_cast<__mmask8>(0xff), vidx, dense, 8);
      _mm512_store_pd(prod,
                      _mm512_mul_pd(_mm512_loadu_pd(values + i), gathered));
      for (int k = 0; k < 8; ++k) sum += prod[k];
    }
  }
  for (; i < n; ++i) sum += values[i] * dense[indices[i]];
  return sum;
}

double Avx512DotSparseSparse(const uint32_t* ai, const double* av, size_t na,
                             const uint32_t* bi, const double* bv,
                             size_t nb) {
  double sum = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (true) {
    i = AdvanceTo(ai, i, na, bi[j]);
    if (i == na) return sum;
    j = AdvanceTo(bi, j, nb, ai[i]);
    if (j == nb) return sum;
    if (bi[j] == ai[i]) {
      sum += av[i] * bv[j];
      if (++i == na || ++j == nb) return sum;
    }
  }
}

void Avx512AddScaledTo(const uint32_t* indices, const double* values,
                       size_t n, double scale, double* out) {
  // See the AVX2 TU: distinct slots, vectorized multiply, serial RMW.
  const __m512d vscale = _mm512_set1_pd(scale);
  alignas(64) double prod[8];
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_store_pd(prod,
                    _mm512_mul_pd(vscale, _mm512_loadu_pd(values + i)));
    for (int k = 0; k < 8; ++k) {
      out[indices[i + static_cast<size_t>(k)]] += prod[k];
    }
  }
  for (; i < n; ++i) out[indices[i]] += scale * values[i];
}

double Avx512SquaredDistance(const uint32_t* ai, const double* av, size_t na,
                             const uint32_t* bi, const double* bv,
                             size_t nb) {
  double s = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < na && j < nb) {
    const uint32_t a = ai[i];
    const uint32_t b = bi[j];
    if (a == b) {
      const double d = av[i] - bv[j];
      s += d * d;
      ++i;
      ++j;
    } else if (a < b) {
      const size_t end = AdvanceTo(ai, i, na, b);
      s = AccumulateSquares(av, i, end, s);
      i = end;
    } else {
      const size_t end = AdvanceTo(bi, j, nb, a);
      s = AccumulateSquares(bv, j, end, s);
      j = end;
    }
  }
  s = AccumulateSquares(av, i, na, s);
  s = AccumulateSquares(bv, j, nb, s);
  return s;
}

size_t Avx512RemapSparseView(const uint32_t* indices, const double* values,
                             size_t n, const uint32_t* remap,
                             size_t remap_size, uint32_t* out_indices,
                             double* out_values) {
  // Same in-range prefix as scalar (ids >= remap_size are a sorted suffix).
  size_t limit = n;
  if (remap_size <= static_cast<size_t>(UINT32_MAX)) {
    limit = AdvanceTo(indices, 0, n, static_cast<uint32_t>(remap_size));
  }
  size_t i = 0;
  size_t out = 0;
  // vpgatherdd sign-extends its 32-bit indices; ids above INT32_MAX must
  // take the scalar loop (sorted, so the last in-range id bounds them all).
  if (limit >= 8 && indices[limit - 1] <= static_cast<uint32_t>(INT32_MAX)) {
    const __m256i pruned = _mm256_set1_epi32(-1);  // kPrunedFeature
    for (; i + 8 <= limit; i += 8) {
      const __m256i vidx = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(indices + i));
      // Masked form with an explicit zero source, as in the dot gather.
      const __m256i dense = _mm256_mmask_i32gather_epi32(
          _mm256_setzero_si256(), static_cast<__mmask8>(0xff), vidx,
          reinterpret_cast<const int*>(remap), 4);
      const __mmask8 keep = _mm256_cmpneq_epu32_mask(dense, pruned);
      // vpcompressd/vpcompresspd store exactly popcount(keep) elements, so
      // in-place operation never writes past the read cursor.
      _mm256_mask_compressstoreu_epi32(out_indices + out, keep, dense);
      _mm512_mask_compressstoreu_pd(out_values + out, keep,
                                    _mm512_loadu_pd(values + i));
      out += static_cast<size_t>(
          __builtin_popcount(static_cast<unsigned>(keep)));
    }
  }
  for (; i < limit; ++i) {
    const uint32_t dense = remap[indices[i]];
    if (dense == kPrunedFeature) continue;
    out_indices[out] = dense;
    out_values[out] = values[i];
    ++out;
  }
  return out;
}

}  // namespace simd
}  // namespace zombie

#endif  // ZOMBIE_SIMD_HAVE_AVX512
