// AVX2 implementations of the four sparse kernels. Compiled with
// "-mavx2 -ffp-contract=off" (see src/CMakeLists.txt); only reached through
// the dispatch table after cpuid confirms AVX2, so nothing here may leak
// into other TUs — helpers stay in the anonymous namespace and the only
// project include is the raw entry-point header (see kernel_entries.h for
// the ODR rationale).
//
// Bit-identity strategy (the contract in sparse_kernels_scalar.h): SIMD is
// applied to index scanning and to independent multiplies only. Every
// accumulator add is performed serially, on the same operands, in scalar
// program order. Products may be computed 4 at a time because each lane is
// the same single-rounding IEEE multiply the scalar loop performs; with FP
// contraction off neither path fuses mul+add.

#include <cstddef>
#include <cstdint>
#include <immintrin.h>

#include "ml/simd/kernel_entries.h"

#if defined(ZOMBIE_SIMD_HAVE_AVX2)

namespace zombie {
namespace simd {
namespace {

// First position >= i whose index is >= bound, or n. `idx` is sorted
// ascending, so the lanes comparing below bound form a prefix of each
// 8-lane block. AVX2 has no unsigned 32-bit compare: XOR both sides with
// the sign bit and compare signed (order-preserving bijection), which keeps
// UINT32_MAX-adjacent indices — a tested part of the contract — correct.
//
// Hybrid scan: a short scalar probe first, vectors only for what remains.
// Merging two streams of similar density yields mismatch runs of ~2, where
// a 32-byte compare per advance costs more than two scalar steps; the
// vector loop pays off on the long runs of unbalanced merges (a doc row
// against a centroid-sized row, the kNN/k-means shape), where each compare
// retires 8 indices.
inline size_t AdvanceTo(const uint32_t* idx, size_t i, size_t n,
                        uint32_t bound) {
  for (int probe = 0; probe < 4; ++probe) {
    if (i == n || idx[i] >= bound) return i;
    ++i;
  }
  const __m256i sign = _mm256_set1_epi32(INT32_MIN);
  const __m256i vbound = _mm256_xor_si256(
      _mm256_set1_epi32(static_cast<int32_t>(bound)), sign);
  for (; i + 8 <= n; i += 8) {
    const __m256i lanes = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i)), sign);
    const unsigned below = static_cast<unsigned>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpgt_epi32(vbound, lanes))));
    if (below != 0xffu) {
      return i + static_cast<size_t>(__builtin_ctz(~below));
    }
  }
  while (i < n && idx[i] < bound) ++i;
  return i;
}

// s += v[k]^2 for k in [i, end), in order. Squares are vectorized (one
// multiply per element either way); the adds stay serial and ordered.
inline double AccumulateSquares(const double* v, size_t i, size_t end,
                                double s) {
  alignas(32) double sq[4];
  for (; i + 4 <= end; i += 4) {
    const __m256d lanes = _mm256_loadu_pd(v + i);
    _mm256_store_pd(sq, _mm256_mul_pd(lanes, lanes));
    s += sq[0];
    s += sq[1];
    s += sq[2];
    s += sq[3];
  }
  for (; i < end; ++i) s += v[i] * v[i];
  return s;
}

}  // namespace

double Avx2DotSparseDense(const uint32_t* indices, const double* values,
                          size_t n, const double* dense) {
  double sum = 0.0;
  size_t i = 0;
  // _mm256_i32gather_pd sign-extends its 32-bit indices; indices above
  // INT32_MAX (legal in the format) must take the scalar loop. Indices are
  // sorted, so checking the last one covers all.
  if (n >= 4 && indices[n - 1] <= static_cast<uint32_t>(INT32_MAX)) {
    alignas(32) double prod[4];
    // Masked all-lanes gather with an explicit zero source: the plain
    // gather intrinsic's "uninitialized pass-through" idiom (__Y = __Y)
    // trips -Wmaybe-uninitialized under -Werror builds.
    const __m256d ones =
        _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
    for (; i + 4 <= n; i += 4) {
      const __m128i vidx = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(indices + i));
      const __m256d gathered =
          _mm256_mask_i32gather_pd(_mm256_setzero_pd(), dense, vidx, ones, 8);
      _mm256_store_pd(prod,
                      _mm256_mul_pd(_mm256_loadu_pd(values + i), gathered));
      sum += prod[0];
      sum += prod[1];
      sum += prod[2];
      sum += prod[3];
    }
  }
  for (; i < n; ++i) sum += values[i] * dense[indices[i]];
  return sum;
}

double Avx2DotSparseSparse(const uint32_t* ai, const double* av, size_t na,
                           const uint32_t* bi, const double* bv, size_t nb) {
  // Same run-skipping merge as scalar, with the mismatch scans — the
  // dominant cost at production sparsity, where matches are rare — eating 8
  // indices per compare. Matches are found in the identical ascending
  // order, so the FP addition sequence is unchanged.
  double sum = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (true) {
    i = AdvanceTo(ai, i, na, bi[j]);
    if (i == na) return sum;
    j = AdvanceTo(bi, j, nb, ai[i]);
    if (j == nb) return sum;
    if (bi[j] == ai[i]) {
      sum += av[i] * bv[j];
      if (++i == na || ++j == nb) return sum;
    }
  }
}

void Avx2AddScaledTo(const uint32_t* indices, const double* values, size_t n,
                     double scale, double* out) {
  // Indices are strictly increasing, so every write hits a distinct slot:
  // the read-modify-writes are independent and each slot sees exactly the
  // scalar loop's single `+= scale * value` add. Only the multiply is
  // vectorized; scatter/gather forms lose on current cores and would need
  // an INT32_MAX guard besides.
  const __m256d vscale = _mm256_set1_pd(scale);
  alignas(32) double prod[4];
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_store_pd(prod,
                    _mm256_mul_pd(vscale, _mm256_loadu_pd(values + i)));
    out[indices[i]] += prod[0];
    out[indices[i + 1]] += prod[1];
    out[indices[i + 2]] += prod[2];
    out[indices[i + 3]] += prod[3];
  }
  for (; i < n; ++i) out[indices[i]] += scale * values[i];
}

double Avx2SquaredDistance(const uint32_t* ai, const double* av, size_t na,
                           const uint32_t* bi, const double* bv, size_t nb) {
  // Three-way merge with the same accumulation order as scalar. Unlike Dot,
  // every element touches the accumulator, so mismatch runs cannot be
  // skipped — but their squares can be computed 4 wide between the ordered
  // adds, and AdvanceTo finds each run's end 8 indices per compare.
  double s = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < na && j < nb) {
    const uint32_t a = ai[i];
    const uint32_t b = bi[j];
    if (a == b) {
      const double d = av[i] - bv[j];
      s += d * d;
      ++i;
      ++j;
    } else if (a < b) {
      const size_t end = AdvanceTo(ai, i, na, b);
      s = AccumulateSquares(av, i, end, s);
      i = end;
    } else {
      const size_t end = AdvanceTo(bi, j, nb, a);
      s = AccumulateSquares(bv, j, end, s);
      j = end;
    }
  }
  s = AccumulateSquares(av, i, na, s);
  s = AccumulateSquares(bv, j, nb, s);
  return s;
}

namespace {

// Branchless left-pack tables for RemapSparseView, indexed by the 4-bit
// kept mask of a block. AVX2 has no compress-store, so the kept lanes are
// shuffled to the front and stored full-width: kCompress32 is the
// _mm_shuffle_epi8 byte pattern packing the kept uint32 lanes (0x80 zeroes
// the dead tail), kCompress64 the _mm256_permutevar8x32_epi32 lane pattern
// packing the matching doubles viewed as int32 pairs.
struct Compress32Lut {
  alignas(16) uint8_t bytes[16][16];
};

constexpr Compress32Lut MakeCompress32Lut() {
  Compress32Lut lut{};
  for (int mask = 0; mask < 16; ++mask) {
    int out = 0;
    for (int lane = 0; lane < 4; ++lane) {
      if ((mask & (1 << lane)) == 0) continue;
      for (int b = 0; b < 4; ++b) {
        lut.bytes[mask][out * 4 + b] = static_cast<uint8_t>(lane * 4 + b);
      }
      ++out;
    }
    for (; out < 4; ++out) {
      for (int b = 0; b < 4; ++b) lut.bytes[mask][out * 4 + b] = 0x80;
    }
  }
  return lut;
}

constexpr Compress32Lut kCompress32 = MakeCompress32Lut();

struct Compress64Lut {
  alignas(32) int32_t lanes[16][8];
};

constexpr Compress64Lut MakeCompress64Lut() {
  Compress64Lut lut{};
  for (int mask = 0; mask < 16; ++mask) {
    int out = 0;
    for (int lane = 0; lane < 4; ++lane) {
      if ((mask & (1 << lane)) == 0) continue;
      lut.lanes[mask][out * 2] = lane * 2;
      lut.lanes[mask][out * 2 + 1] = lane * 2 + 1;
      ++out;
    }
    // Slots past the kept count stay 0: their stored contents are dead
    // (the next block's store or the final kept count covers them).
  }
  return lut;
}

constexpr Compress64Lut kCompress64 = MakeCompress64Lut();

}  // namespace

size_t Avx2RemapSparseView(const uint32_t* indices, const double* values,
                           size_t n, const uint32_t* remap, size_t remap_size,
                           uint32_t* out_indices, double* out_values) {
  // Same in-range prefix as scalar: indices are sorted, so ids >= remap_size
  // form a suffix that AdvanceTo locates 8 lanes per compare.
  size_t limit = n;
  if (remap_size <= static_cast<size_t>(UINT32_MAX)) {
    limit = AdvanceTo(indices, 0, n, static_cast<uint32_t>(remap_size));
  }
  size_t i = 0;
  size_t out = 0;
  // vpgatherdd sign-extends its 32-bit indices; ids above INT32_MAX must
  // take the scalar loop (sorted, so the last in-range id bounds them all).
  if (limit >= 4 && indices[limit - 1] <= static_cast<uint32_t>(INT32_MAX)) {
    const __m128i pruned = _mm_set1_epi32(-1);  // kPrunedFeature
    for (; i + 4 <= limit; i += 4) {
      const __m128i vidx = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(indices + i));
      const __m128i dense = _mm_i32gather_epi32(
          reinterpret_cast<const int*>(remap), vidx, 4);
      const unsigned kept = 0xfu & ~static_cast<unsigned>(_mm_movemask_ps(
          _mm_castsi128_ps(_mm_cmpeq_epi32(dense, pruned))));
      // Full-width stores past the kept lanes are safe in-place: the write
      // cursor trails the read cursor (out <= i) and both blocks of this
      // iteration are already in registers.
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(out_indices + out),
          _mm_shuffle_epi8(dense,
                           _mm_load_si128(reinterpret_cast<const __m128i*>(
                               kCompress32.bytes[kept]))));
      const __m256i vals = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(values + i));
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(out_values + out),
          _mm256_permutevar8x32_epi32(
              vals, _mm256_load_si256(reinterpret_cast<const __m256i*>(
                        kCompress64.lanes[kept]))));
      out += static_cast<size_t>(__builtin_popcount(kept));
    }
  }
  for (; i < limit; ++i) {
    const uint32_t dense = remap[indices[i]];
    if (dense == kPrunedFeature) continue;
    out_indices[out] = dense;
    out_values[out] = values[i];
    ++out;
  }
  return out;
}

}  // namespace simd
}  // namespace zombie

#endif  // ZOMBIE_SIMD_HAVE_AVX2
