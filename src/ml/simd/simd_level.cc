#include "ml/simd/simd_level.h"

#include <cstdlib>

#include "util/logging.h"
#include "util/string_util.h"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace zombie {
namespace simd {
namespace {

#if defined(__x86_64__) || defined(__i386__)

// XCR0 bits the OS must set before the corresponding register state is
// usable: without them cpuid may advertise AVX on hardware whose kernel
// never context-switches the wide registers.
constexpr uint64_t kXcr0Ymm = 0x6;          // XMM + YMM state
constexpr uint64_t kXcr0Zmm = 0xe6;         // + opmask, ZMM_Hi256, Hi16_ZMM

uint64_t ReadXcr0() {
  uint32_t eax = 0;
  uint32_t edx = 0;
  __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<uint64_t>(edx) << 32) | eax;
}

SimdLevel ProbeCpu() {
  uint32_t eax = 0;
  uint32_t ebx = 0;
  uint32_t ecx = 0;
  uint32_t edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return SimdLevel::kScalar;
  const bool has_osxsave = (ecx & (1u << 27)) != 0;
  const bool has_avx = (ecx & (1u << 28)) != 0;
  if (!has_osxsave || !has_avx) return SimdLevel::kScalar;
  const uint64_t xcr0 = ReadXcr0();
  if ((xcr0 & kXcr0Ymm) != kXcr0Ymm) return SimdLevel::kScalar;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) {
    return SimdLevel::kScalar;
  }
  const bool has_avx2 = (ebx & (1u << 5)) != 0;
  if (!has_avx2) return SimdLevel::kScalar;
  // The kernels use F (foundation), BW (byte/word masks), DQ (i64/f64
  // compares), VL (256-bit forms), and CD (conflict detection); require the
  // whole set — it is what -mavx512f -mavx512bw -mavx512dq -mavx512vl
  // -mavx512cd compiles against, and every AVX-512 server core since
  // Skylake-SP has all five.
  const bool has_avx512 = (ebx & (1u << 16)) != 0 &&  // F
                          (ebx & (1u << 30)) != 0 &&  // BW
                          (ebx & (1u << 17)) != 0 &&  // DQ
                          (ebx & (1u << 31)) != 0 &&  // VL
                          (ebx & (1u << 28)) != 0;    // CD
  if (has_avx512 && (ReadXcr0() & kXcr0Zmm) == kXcr0Zmm) {
    return SimdLevel::kAvx512;
  }
  return SimdLevel::kAvx2;
}

#else  // non-x86

SimdLevel ProbeCpu() { return SimdLevel::kScalar; }

#endif

SimdLevel Min(SimdLevel a, SimdLevel b) { return a < b ? a : b; }

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

StatusOr<SimdLevel> ParseSimdLevel(const std::string& name) {
  if (name == "scalar") return SimdLevel::kScalar;
  if (name == "avx2") return SimdLevel::kAvx2;
  if (name == "avx512") return SimdLevel::kAvx512;
  return Status::InvalidArgument(
      StrFormat("bad SIMD level \"%s\" (want scalar, avx2, or avx512)",
                name.c_str()));
}

SimdLevel DetectCpuSimdLevel() {
  static const SimdLevel level = ProbeCpu();
  return level;
}

SimdLevel CompiledSimdLevel() {
#if defined(ZOMBIE_SIMD_HAVE_AVX512)
  return SimdLevel::kAvx512;
#elif defined(ZOMBIE_SIMD_HAVE_AVX2)
  return SimdLevel::kAvx2;
#else
  return SimdLevel::kScalar;
#endif
}

StatusOr<SimdLevel> ComputeActiveSimdLevel(const char* forced_env,
                                           SimdLevel detected,
                                           SimdLevel compiled) {
  const SimdLevel native = Min(detected, compiled);
  if (forced_env == nullptr) return native;
  StatusOr<SimdLevel> forced_or = ParseSimdLevel(forced_env);
  if (!forced_or.ok()) return forced_or.status();
  const SimdLevel forced = forced_or.value();
  if (forced > native) {
    ZLOG(Warning) << "ZOMBIE_SIMD_LEVEL=" << SimdLevelName(forced)
                  << " not available (cpu supports " << SimdLevelName(detected)
                  << ", binary compiled for " << SimdLevelName(compiled)
                  << "); running at " << SimdLevelName(native);
    return native;
  }
  return forced;
}

SimdLevel ActiveSimdLevel() {
  static const SimdLevel level = [] {
    StatusOr<SimdLevel> resolved = ComputeActiveSimdLevel(
        std::getenv("ZOMBIE_SIMD_LEVEL"), DetectCpuSimdLevel(),
        CompiledSimdLevel());
    ZCHECK(resolved.ok()) << resolved.status().ToString();
    return resolved.value();
  }();
  return level;
}

}  // namespace simd
}  // namespace zombie
