#ifndef ZOMBIE_ML_SIMD_SIMD_LEVEL_H_
#define ZOMBIE_ML_SIMD_SIMD_LEVEL_H_

#include <string>

#include "util/status.h"

namespace zombie {
namespace simd {

/// ISA tiers the dispatch layer distinguishes. Ordered: a higher level
/// implies the hardware can also run every lower one, so "clamp to the
/// minimum of detected/compiled/forced" is the whole resolution story.
enum class SimdLevel {
  kScalar = 0,  // baseline x86-64 (or any non-x86 target); the reference path
  kAvx2 = 1,    // AVX2 (256-bit integer + FP lanes)
  kAvx512 = 2,  // AVX-512 F/BW/DQ/VL/CD (512-bit lanes + mask registers)
};

/// Canonical lowercase name ("scalar", "avx2", "avx512"); these are the
/// accepted ZOMBIE_SIMD_LEVEL values and the names CI prints.
const char* SimdLevelName(SimdLevel level);

/// Parses a ZOMBIE_SIMD_LEVEL value. Only the exact canonical names are
/// accepted; anything else is InvalidArgument (a typo silently falling back
/// to native dispatch would defeat the point of forcing a level).
StatusOr<SimdLevel> ParseSimdLevel(const std::string& name);

/// Highest level the running CPU supports, probed once via cpuid (including
/// the xgetbv check that the OS actually saves the wider register state).
SimdLevel DetectCpuSimdLevel();

/// Highest level this binary has kernels compiled for (depends on the
/// ZOMBIE_SIMD CMake option and what the compiler supported).
SimdLevel CompiledSimdLevel();

/// Pure resolution rule behind ActiveSimdLevel(), exposed for tests:
/// min(detected, compiled), further clamped *down* by a forced level.
/// `forced_env` is the raw ZOMBIE_SIMD_LEVEL value (nullptr when unset);
/// an unparsable value is an error, and forcing a level the CPU or binary
/// lacks downgrades with a warning rather than executing illegal opcodes.
StatusOr<SimdLevel> ComputeActiveSimdLevel(const char* forced_env,
                                           SimdLevel detected,
                                           SimdLevel compiled);

/// The level all dispatched kernels run at, resolved once on first use from
/// cpuid + CompiledSimdLevel() + the ZOMBIE_SIMD_LEVEL env override and then
/// immutable for the life of the process. Aborts on a malformed override —
/// a forced-dispatch CI matrix must never silently test the wrong path.
SimdLevel ActiveSimdLevel();

}  // namespace simd
}  // namespace zombie

#endif  // ZOMBIE_ML_SIMD_SIMD_LEVEL_H_
