#ifndef ZOMBIE_ML_SIMD_SPARSE_KERNELS_SCALAR_H_
#define ZOMBIE_ML_SIMD_SPARSE_KERNELS_SCALAR_H_

#include <cstddef>
#include <cstdint>

#include "ml/simd/kernel_entries.h"  // kPrunedFeature

// Scalar reference kernels, verbatim the loop bodies that lived inline in
// sparse_vector.h before the dispatch layer. These are the bit-identity
// anchor: every ISA-specific kernel must reproduce their FP additions with
// the same operands in the same order (see the contract comment in
// sparse_vector.h), and the differential tests in tests/ml_simd_kernels_test.cc
// compare raw result bits against these.
//
// This header is included only by baseline-flag TUs (sparse_vector.h callers
// and dispatch.cc). The AVX TUs deliberately never include it — an inline
// function compiled under -mavx512* and picked by the linker would leak
// illegal opcodes into the scalar path on older hardware.

namespace zombie {
namespace simd {

/// Dense-side dot. Caller has already clamped `n` so every indices[i] is in
/// range of `dense` (the sorted-indices lower_bound cutoff in the wrapper).
inline double ScalarDotSparseDense(const uint32_t* indices,
                                   const double* values, size_t n,
                                   const double* dense) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += values[i] * dense[indices[i]];
  }
  return sum;
}

/// Run-skipping sparse·sparse merge. Requires na > 0 and nb > 0 (the
/// wrapper returns 0.0 for empty operands).
///
/// Only matches touch the accumulator (matches arrive in the same
/// ascending-index order as a classic three-way merge, so the FP addition
/// sequence is unchanged), while mismatch runs burn through a tight scan
/// loop whose only work is one compare + increment. On vector pairs the
/// branch predictor has not seen before — the production case — this is
/// ~1.6x faster than the three-way merge, whose per-element branch outcomes
/// are data-random. (Single-pair microbenchmarks hide that: repeating one
/// pair lets the predictor memorize the whole merge sequence, which
/// flatters the branchy form. bench_micro therefore cycles a pool of
/// pairs.) A cmov-style conditional-increment merge is ~2x slower either
/// way: it serializes the load→compare→advance chain.
inline double ScalarDotSparseSparse(const uint32_t* ai, const double* av,
                                    size_t na, const uint32_t* bi,
                                    const double* bv, size_t nb) {
  double sum = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (true) {
    const uint32_t b = bi[j];
    while (ai[i] < b) {
      if (++i == na) return sum;
    }
    const uint32_t a = ai[i];
    while (bi[j] < a) {
      if (++j == nb) return sum;
    }
    if (bi[j] == a) {
      sum += av[i] * bv[j];
      if (++i == na || ++j == nb) return sum;
    }
  }
}

/// out[indices[i]] += scale * values[i]. Caller has grown `out` to cover
/// dimension() already. Indices are strictly increasing, so every write
/// lands in a distinct slot.
inline void ScalarAddScaledTo(const uint32_t* indices, const double* values,
                              size_t n, double scale, double* out) {
  for (size_t i = 0; i < n; ++i) {
    out[indices[i]] += scale * values[i];
  }
}

/// Three-way merge squared distance; handles na == 0 / nb == 0 via the
/// tail loops.
inline double ScalarSquaredDistance(const uint32_t* ai, const double* av,
                                    size_t na, const uint32_t* bi,
                                    const double* bv, size_t nb) {
  double s = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < na && j < nb) {
    const uint32_t a = ai[i];
    const uint32_t b = bi[j];
    if (a == b) {
      const double d = av[i] - bv[j];
      s += d * d;
      ++i;
      ++j;
    } else if (a < b) {
      s += av[i] * av[i];
      ++i;
    } else {
      s += bv[j] * bv[j];
      ++j;
    }
  }
  for (; i < na; ++i) s += av[i] * av[i];
  for (; j < nb; ++j) s += bv[j] * bv[j];
  return s;
}

/// Reference remap compaction (contract in sparse_kernels.h next to
/// RemapSparseViewFn). No FP arithmetic — the bit-identity obligation on the
/// ISA variants is to emit exactly this kept sequence. The in-place case is
/// trivially safe here: `out` never passes `i`.
inline size_t ScalarRemapSparseView(const uint32_t* indices,
                                    const double* values, size_t n,
                                    const uint32_t* remap, size_t remap_size,
                                    uint32_t* out_indices,
                                    double* out_values) {
  size_t out = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t idx = indices[i];
    if (idx >= remap_size) break;  // sorted: the rest are out of range too
    const uint32_t dense = remap[idx];
    if (dense == kPrunedFeature) continue;
    out_indices[out] = dense;
    out_values[out] = values[i];
    ++out;
  }
  return out;
}

}  // namespace simd
}  // namespace zombie

#endif  // ZOMBIE_ML_SIMD_SPARSE_KERNELS_SCALAR_H_
