#include "ml/simd/kernel_entries.h"
#include "ml/simd/simd_level.h"
#include "ml/simd/sparse_kernels.h"
#include "ml/simd/sparse_kernels_scalar.h"

namespace zombie {
namespace simd {
namespace {

const SparseKernels kScalarTable = {
    &ScalarDotSparseDense,
    &ScalarDotSparseSparse,
    &ScalarAddScaledTo,
    &ScalarSquaredDistance,
    &ScalarRemapSparseView,
};

#if defined(ZOMBIE_SIMD_HAVE_AVX2)
const SparseKernels kAvx2Table = {
    &Avx2DotSparseDense,
    &Avx2DotSparseSparse,
    &Avx2AddScaledTo,
    &Avx2SquaredDistance,
    &Avx2RemapSparseView,
};
#endif

#if defined(ZOMBIE_SIMD_HAVE_AVX512)
const SparseKernels kAvx512Table = {
    &Avx512DotSparseDense,
    &Avx512DotSparseSparse,
    &Avx512AddScaledTo,
    &Avx512SquaredDistance,
    &Avx512RemapSparseView,
};
#endif

}  // namespace

const SparseKernels* KernelsForLevel(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return &kScalarTable;
    case SimdLevel::kAvx2:
#if defined(ZOMBIE_SIMD_HAVE_AVX2)
      return &kAvx2Table;
#else
      return nullptr;
#endif
    case SimdLevel::kAvx512:
#if defined(ZOMBIE_SIMD_HAVE_AVX512)
      return &kAvx512Table;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

const SparseKernels& ActiveKernels() {
  // Resolved once; ActiveSimdLevel() never exceeds CompiledSimdLevel(), so
  // the lookup cannot return nullptr.
  static const SparseKernels* const active = KernelsForLevel(ActiveSimdLevel());
  return *active;
}

std::vector<SimdLevel> AvailableLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  const SimdLevel cap = DetectCpuSimdLevel();
  for (SimdLevel level : {SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    if (level <= cap && KernelsForLevel(level) != nullptr) {
      levels.push_back(level);
    }
  }
  return levels;
}

}  // namespace simd
}  // namespace zombie
