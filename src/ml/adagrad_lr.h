#ifndef ZOMBIE_ML_ADAGRAD_LR_H_
#define ZOMBIE_ML_ADAGRAD_LR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ml/learner.h"

namespace zombie {

/// Hyperparameters for AdaGrad logistic regression.
struct AdaGradOptions {
  /// Base step size (per-coordinate rates adapt from here).
  double eta = 0.5;
  /// L2 regularization applied to touched coordinates.
  double lambda = 1e-5;
  /// Stability constant in the adaptive denominator.
  double epsilon = 1e-6;
  /// Clamp on the raw score before the sigmoid.
  double score_clip = 30.0;
};

/// Logistic regression with AdaGrad per-coordinate step sizes (Duchi et
/// al.): rare features keep large steps while frequent ones anneal. On
/// hashed sparse text this converges far more evenly than a single global
/// rate and is much less sensitive to eta — the better SGD choice for the
/// one-pass inner loop.
class AdaGradLogisticLearner : public Learner {
 public:
  explicit AdaGradLogisticLearner(AdaGradOptions options = {});

  void Update(SparseVectorView x, int32_t y) override;
  double Score(SparseVectorView x) const override;
  double PredictProbability(SparseVectorView x) const override;
  void Reset() override;
  std::unique_ptr<Learner> Clone() const override;
  std::string name() const override { return "adagrad"; }
  size_t num_updates() const override { return num_updates_; }
  bool ExportWeightMagnitudes(std::vector<double>* out) const override;
  bool CompactFeatures(const std::vector<uint32_t>& old_to_new,
                       uint32_t new_dimension) override;

  double WeightAt(uint32_t index) const;

 private:
  double RawScore(SparseVectorView x) const;

  AdaGradOptions options_;
  std::vector<double> weights_;
  std::vector<double> grad_sq_;  // accumulated squared gradients
  double bias_ = 0.0;
  double bias_grad_sq_ = 0.0;
  size_t num_updates_ = 0;
};

}  // namespace zombie

#endif  // ZOMBIE_ML_ADAGRAD_LR_H_
