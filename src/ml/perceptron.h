#ifndef ZOMBIE_ML_PERCEPTRON_H_
#define ZOMBIE_ML_PERCEPTRON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ml/learner.h"

namespace zombie {

/// Averaged perceptron. Updates only on mistakes; Score() uses the running
/// average of all intermediate weight vectors (computed lazily with the
/// standard two-vector trick), which is far more stable than the last
/// iterate for a stream of examples.
class AveragedPerceptronLearner : public Learner {
 public:
  AveragedPerceptronLearner() = default;

  void Update(SparseVectorView x, int32_t y) override;
  double Score(SparseVectorView x) const override;
  void Reset() override;
  std::unique_ptr<Learner> Clone() const override;
  std::string name() const override { return "perceptron"; }
  size_t num_updates() const override { return num_updates_; }
  bool ExportWeightMagnitudes(std::vector<double>* out) const override;
  bool CompactFeatures(const std::vector<uint32_t>& old_to_new,
                       uint32_t new_dimension) override;

  size_t num_mistakes() const { return num_mistakes_; }

 private:
  // Averaged weight = weights_ - cum_weights_ / t  (same for bias).
  std::vector<double> weights_;
  std::vector<double> cum_weights_;  // sum over steps of step-stamped updates
  double bias_ = 0.0;
  double cum_bias_ = 0.0;
  size_t num_updates_ = 0;
  size_t num_mistakes_ = 0;
};

}  // namespace zombie

#endif  // ZOMBIE_ML_PERCEPTRON_H_
