#include "ml/perceptron.h"

#include "util/logging.h"

namespace zombie {

void AveragedPerceptronLearner::Update(SparseVectorView x, int32_t y) {
  ZCHECK(y == 0 || y == 1) << "binary labels required, got " << y;
  ++num_updates_;
  double t = static_cast<double>(num_updates_);
  // Perceptron convention: labels in {-1, +1}.
  double yy = y == 1 ? 1.0 : -1.0;
  double margin = x.Dot(weights_) + bias_;
  if (yy * margin > 0.0) return;  // correct: no update

  ++num_mistakes_;
  if (weights_.size() < x.dimension()) {
    weights_.resize(x.dimension(), 0.0);
    cum_weights_.resize(x.dimension(), 0.0);
  }
  for (size_t i = 0; i < x.num_nonzero(); ++i) {
    uint32_t idx = x.index_at(i);
    double delta = yy * x.value_at(i);
    weights_[idx] += delta;
    cum_weights_[idx] += t * delta;  // step-stamped for lazy averaging
  }
  bias_ += yy;
  cum_bias_ += t * yy;
}

double AveragedPerceptronLearner::Score(SparseVectorView x) const {
  if (num_updates_ == 0) return 0.0;
  double t = static_cast<double>(num_updates_);
  // avg_w = w - cum_w / t; compute the dot products separately to avoid
  // materializing the averaged vector per call.
  double s = x.Dot(weights_) + bias_;
  double cum = x.Dot(cum_weights_) + cum_bias_;
  return s - cum / t;
}

void AveragedPerceptronLearner::Reset() {
  weights_.clear();
  cum_weights_.clear();
  bias_ = 0.0;
  cum_bias_ = 0.0;
  num_updates_ = 0;
  num_mistakes_ = 0;
}

std::unique_ptr<Learner> AveragedPerceptronLearner::Clone() const {
  return std::make_unique<AveragedPerceptronLearner>();
}

bool AveragedPerceptronLearner::ExportWeightMagnitudes(
    std::vector<double>* out) const {
  // Score() uses the lazy average weights_ - cum_weights_ / t, so that is
  // the influence that matters for pruning.
  out->resize(weights_.size());
  const double t =
      num_updates_ == 0 ? 1.0 : static_cast<double>(num_updates_);
  for (size_t f = 0; f < weights_.size(); ++f) {
    const double cum = f < cum_weights_.size() ? cum_weights_[f] : 0.0;
    (*out)[f] = std::abs(weights_[f] - cum / t);
  }
  return true;
}

bool AveragedPerceptronLearner::CompactFeatures(
    const std::vector<uint32_t>& old_to_new, uint32_t new_dimension) {
  CompactDenseState(old_to_new, new_dimension, &weights_);
  CompactDenseState(old_to_new, new_dimension, &cum_weights_);
  return true;
}

}  // namespace zombie
